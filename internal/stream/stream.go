// Package stream provides the pooled chunked body path for the proxy data
// plane: a sync.Pool-backed fixed-size chunk allocator and a multi-reader
// spool that tees an origin stream to any number of clients while capturing
// a bounded prefix for cache insertion.
//
// Ownership rules (see DESIGN.md §12):
//
//   - Exactly one writer appends to a Spool and must end the stream with
//     CloseWriter. The writer is usually the origin pump goroutine.
//   - Any number of readers attach via ReaderAt; each must Close. Readers
//     never mutate chunks — Append only writes past every reader's view and
//     trim never reclaims a chunk a live reader can still address.
//   - The spool owner (whoever created it) must call Discard exactly once
//     after the writer is done and the capture has been consumed; chunks
//     return to the pool only when the writer is closed, the reader count is
//     zero, and Discard has been called. The pool's Outstanding counter is
//     the leak oracle for tests.
//
// Over-cap bodies: once Size exceeds the capture cap the spool "overflows" —
// the full body can no longer be captured, Bytes reports !ok, and the spool
// degrades to a bounded relay window. Fully-consumed leading chunks are
// trimmed eagerly, and the writer blocks (backpressure) while more than the
// cap is retained and a reader is still attached, so a slow client bounds
// memory instead of the origin filling the heap.
package stream

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultChunkBytes is the chunk size used when a Pool is created with a
// non-positive size. 64 KiB matches the kernel socket buffer ballpark: large
// enough to amortize syscalls, small enough that a pool of them is cheap.
const DefaultChunkBytes = 64 << 10

// maxPoolRetainedBytes bounds how much free memory a Pool keeps around;
// chunks returned beyond the bound are dropped for the GC to reclaim.
const maxPoolRetainedBytes = 16 << 20

// Pool hands out fixed-size byte chunks from a bounded free list and counts
// the chunks currently checked out. A plain mutex-guarded stack (rather than
// sync.Pool) keeps Get/Put allocation-free — boxing a []byte into an
// interface costs one heap allocation per Put, which would defeat the data
// plane's O(1) allocs-per-request budget. The Outstanding counter exists for
// leak tests: every abort path in the proxy must return to Outstanding()==0
// once quiescent.
type Pool struct {
	chunk       int
	maxFree     int
	mu          sync.Mutex
	free        [][]byte
	outstanding atomic.Int64
}

// NewPool returns a pool of chunkBytes-sized chunks.
func NewPool(chunkBytes int) *Pool {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	maxFree := maxPoolRetainedBytes / chunkBytes
	if maxFree < 32 {
		maxFree = 32
	}
	return &Pool{chunk: chunkBytes, maxFree: maxFree}
}

// ChunkBytes reports the fixed chunk size.
func (pl *Pool) ChunkBytes() int { return pl.chunk }

// Get checks a chunk out of the pool. The chunk is full-length (ChunkBytes).
func (pl *Pool) Get() []byte {
	pl.outstanding.Add(1)
	pl.mu.Lock()
	if n := len(pl.free); n > 0 {
		b := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.mu.Unlock()
		return b
	}
	pl.mu.Unlock()
	return make([]byte, pl.chunk)
}

// Put returns a chunk obtained from Get. Foreign slices are rejected so a
// misrouted buffer can never poison the pool.
func (pl *Pool) Put(b []byte) {
	if cap(b) != pl.chunk {
		return
	}
	pl.outstanding.Add(-1)
	pl.mu.Lock()
	if len(pl.free) < pl.maxFree {
		pl.free = append(pl.free, b[:pl.chunk])
	}
	pl.mu.Unlock()
}

// Outstanding reports how many chunks are currently checked out.
func (pl *Pool) Outstanding() int64 { return pl.outstanding.Load() }

// ErrTrimmed is returned by ReaderAt when the requested offset has already
// been reclaimed (possible only after the spool overflowed its capture cap).
var ErrTrimmed = errors.New("stream: data before requested offset already trimmed")

// ErrReleased is returned by ReaderAt after the spool's chunks have been
// recycled.
var ErrReleased = errors.New("stream: spool released")

// Spool is a multi-reader retained body stream. A single writer Appends
// bytes; readers attached with ReaderAt see a consistent prefix and block
// until more data or CloseWriter. Up to cap bytes are retained for capture;
// past that the spool overflows into a bounded relay window.
type Spool struct {
	mu   sync.Mutex
	cond sync.Cond

	pool *Pool
	cap  int64 // capture cap; <=0 means unbounded capture

	chunks [][]byte // chunk-aligned retained window; only the last is partial
	base   int64    // absolute offset of chunks[0][0]
	size   int64    // total bytes ever appended

	overflow  bool
	done      bool
	err       error
	released  bool
	discarded bool

	readers map[*Reader]struct{}

	now       func() time.Time
	firstByte time.Time
	lastByte  time.Time
}

// NewSpool returns a spool drawing from pool, capturing at most captureCap
// bytes (<=0: unbounded). now stamps first/last-byte times; nil uses
// time.Now.
func NewSpool(pool *Pool, captureCap int64, now func() time.Time) *Spool {
	if now == nil {
		now = time.Now
	}
	s := &Spool{pool: pool, cap: captureCap, readers: make(map[*Reader]struct{}), now: now}
	s.cond.L = &s.mu
	return s
}

// Append copies p into pooled chunks. It may block (backpressure) once the
// spool has overflowed and a slow reader is retaining more than the cap.
// Append must not be called after CloseWriter.
func (s *Spool) Append(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return 0, errors.New("stream: append after CloseWriter")
	}
	if s.firstByte.IsZero() {
		s.firstByte = s.now()
	}
	n := len(p)
	chunk := s.pool.ChunkBytes()
	for len(p) > 0 {
		// Fill the tail of the last chunk, or open a new one.
		off := int(s.size - s.base)
		last := len(s.chunks) - 1
		room := 0
		if last >= 0 {
			room = last*chunk + chunk - off
		}
		if room == 0 {
			s.chunks = append(s.chunks, s.pool.Get())
			room = chunk
			last++
		}
		w := copy(s.chunks[last][off-last*chunk:], p)
		p = p[w:]
		s.size += int64(w)

		if s.cap > 0 && s.size > s.cap {
			s.overflow = true
		}
		s.cond.Broadcast() // wake readers waiting for data
		if s.overflow {
			s.trimLocked()
			// Backpressure: while a reader is attached and the retained
			// window still exceeds the cap, wait for readers to advance.
			for !s.released && len(s.readers) > 0 && s.retainedLocked() > s.windowLocked() {
				s.cond.Wait()
				s.trimLocked()
			}
			if s.released {
				return n - len(p), ErrReleased
			}
		}
	}
	return n, nil
}

// windowLocked is the retained-byte bound once overflowed: at least one
// chunk beyond the cap so progress is always possible.
func (s *Spool) windowLocked() int64 {
	w := s.cap
	if w <= 0 {
		w = int64(s.pool.ChunkBytes())
	}
	if min := int64(2 * s.pool.ChunkBytes()); w < min {
		w = min
	}
	return w
}

func (s *Spool) retainedLocked() int64 { return s.size - s.base }

// trimLocked releases leading chunks that every attached reader has fully
// consumed. Only legal after overflow (before that, the prefix is the
// capture). With no readers attached, an overflowed spool drops everything.
func (s *Spool) trimLocked() {
	if !s.overflow || s.released {
		return
	}
	min := s.size
	for r := range s.readers {
		if r.off < min {
			min = r.off
		}
	}
	chunk := int64(s.pool.ChunkBytes())
	for len(s.chunks) > 1 && s.base+chunk <= min {
		s.pool.Put(s.chunks[0])
		s.chunks[0] = nil
		s.chunks = s.chunks[1:]
		s.base += chunk
	}
	// Drop the final partial chunk too when nothing can ever read it again.
	if s.done && len(s.chunks) == 1 && s.base+int64(len(s.chunks[0])) >= s.size && min >= s.size {
		s.pool.Put(s.chunks[0])
		s.chunks = nil
		s.base = s.size
	}
}

// CloseWriter ends the stream. err!=nil marks the body as failed mid-stream;
// readers observe err after draining buffered bytes.
func (s *Spool) CloseWriter(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	s.err = err
	s.lastByte = s.now()
	if s.firstByte.IsZero() {
		s.firstByte = s.lastByte
	}
	s.trimLocked()
	s.maybeReleaseLocked()
	s.cond.Broadcast()
}

// Wait blocks until the writer has closed the stream and returns the
// writer's error.
func (s *Spool) Wait() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.done {
		s.cond.Wait()
	}
	return s.err
}

// Bytes concatenates the captured body into a single slice. ok is false when
// the capture is unusable: writer not done, mid-stream error, or overflow.
func (s *Spool) Bytes() ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done || s.err != nil || s.overflow || s.released {
		return nil, false
	}
	out := make([]byte, s.size-s.base)
	chunk := s.pool.ChunkBytes()
	for i, c := range s.chunks {
		end := int(s.size-s.base) - i*chunk
		if end > chunk {
			end = chunk
		}
		copy(out[i*chunk:], c[:end])
	}
	return out, true
}

// Discard marks the capture consumed. Chunks are recycled once the writer is
// closed and the last reader detaches. Safe to call more than once.
func (s *Spool) Discard() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.discarded = true
	s.maybeReleaseLocked()
	s.cond.Broadcast()
}

func (s *Spool) maybeReleaseLocked() {
	if s.released || !s.done || !s.discarded || len(s.readers) > 0 {
		return
	}
	for _, c := range s.chunks {
		s.pool.Put(c)
	}
	s.chunks = nil
	s.base = s.size
	s.released = true
}

// Overflowed reports whether the body exceeded the capture cap.
func (s *Spool) Overflowed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overflow
}

// Size reports total bytes appended so far.
func (s *Spool) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Done reports whether the writer has closed the stream.
func (s *Spool) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Err returns the writer's terminal error, if any.
func (s *Spool) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Readers reports the number of attached readers.
func (s *Spool) Readers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.readers)
}

// FirstByte returns the timestamp of the first appended byte (zero until
// then; CloseWriter on an empty body stamps both).
func (s *Spool) FirstByte() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstByte
}

// LastByte returns the CloseWriter timestamp (zero until done).
func (s *Spool) LastByte() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastByte
}

// ReaderAt attaches a reader starting at absolute offset off. It fails with
// ErrTrimmed when off precedes the retained window and ErrReleased after the
// spool has been recycled.
func (s *Spool) ReaderAt(off int64) (*Reader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.released {
		return nil, ErrReleased
	}
	if off < s.base {
		return nil, ErrTrimmed
	}
	if off < 0 {
		return nil, fmt.Errorf("stream: negative offset %d", off)
	}
	r := &Reader{s: s, off: off, limit: -1}
	s.readers[r] = struct{}{}
	return r, nil
}

// Reader is one attached consumer of a Spool. Not safe for concurrent use by
// multiple goroutines (attach one Reader per consumer instead).
type Reader struct {
	s      *Spool
	off    int64
	limit  int64 // remaining byte budget; -1 = unlimited
	closed bool
}

// Limit bounds the reader to n further bytes (for Range responses).
func (r *Reader) Limit(n int64) *Reader { r.limit = n; return r }

// Read implements io.Reader, blocking for more data until CloseWriter.
func (r *Reader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, errors.New("stream: read on closed reader")
	}
	if r.limit == 0 {
		return 0, io.EOF
	}
	if r.limit > 0 && int64(len(p)) > r.limit {
		p = p[:r.limit]
	}
	s := r.s
	s.mu.Lock()
	for {
		if r.off < s.base {
			s.mu.Unlock()
			return 0, ErrTrimmed
		}
		if r.off < s.size {
			break
		}
		if s.done {
			s.mu.Unlock()
			if s.err != nil {
				return 0, s.err
			}
			return 0, io.EOF
		}
		s.cond.Wait()
	}
	chunk := int64(s.pool.ChunkBytes())
	ci := (r.off - s.base) / chunk
	co := (r.off - s.base) % chunk
	avail := s.size - r.off
	c := s.chunks[ci]
	n := copy(p, c[co:min64(chunk, co+avail)])
	r.off += int64(n)
	if r.limit > 0 {
		r.limit -= int64(n)
	}
	s.trimLocked()
	s.cond.Broadcast() // wake a backpressured writer
	s.mu.Unlock()
	return n, nil
}

// WriteTo implements io.WriterTo: it streams the remaining window to w
// without copying through an intermediate buffer. Chunk slices are captured
// under the lock but written outside it; this is safe because trim never
// reclaims chunks at or past this reader's offset, and the offset only
// advances after the write completes.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	if r.closed {
		return 0, errors.New("stream: write-to on closed reader")
	}
	s := r.s
	var total int64
	for {
		if r.limit == 0 {
			return total, nil
		}
		s.mu.Lock()
		for r.off >= s.size && !s.done {
			s.cond.Wait()
		}
		if r.off < s.base {
			s.mu.Unlock()
			return total, ErrTrimmed
		}
		if r.off >= s.size {
			err := s.err
			s.mu.Unlock()
			return total, err
		}
		chunk := int64(s.pool.ChunkBytes())
		ci := (r.off - s.base) / chunk
		co := (r.off - s.base) % chunk
		avail := s.size - r.off
		if r.limit > 0 && avail > r.limit {
			avail = r.limit
		}
		end := co + avail
		if end > chunk {
			end = chunk
		}
		seg := r.s.chunks[ci][co:end]
		s.mu.Unlock()

		n, err := w.Write(seg)
		total += int64(n)
		s.mu.Lock()
		r.off += int64(n)
		if r.limit > 0 {
			r.limit -= int64(n)
		}
		s.trimLocked()
		s.cond.Broadcast()
		s.mu.Unlock()
		if err != nil {
			return total, err
		}
	}
}

// Close detaches the reader, waking any backpressured writer. Idempotent.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	s := r.s
	s.mu.Lock()
	delete(s.readers, r)
	s.trimLocked()
	s.maybeReleaseLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
