package core

import (
	"context"
	"testing"
	"time"

	"appx/internal/apps"
	"appx/internal/config"
	"appx/internal/httpmsg"
	"appx/internal/interp"
	"appx/internal/proxy"
	"appx/internal/static"
)

func TestGeneratePhase1Only(t *testing.T) {
	a := apps.Wish()
	art, err := Generate(Options{App: a.Name, APK: a.APK})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if art.Graph == nil || len(art.Graph.Sigs) == 0 {
		t.Fatal("no signatures")
	}
	if art.Config == nil || len(art.Config.Policies) == 0 {
		t.Fatal("no config")
	}
	if art.Verification != nil {
		t.Fatal("verification ran without being requested")
	}
}

func TestGenerateAllPhases(t *testing.T) {
	a := apps.DoorDash()
	configured := false
	art, err := Generate(Options{
		App: a.Name,
		APK: a.APK,
		Verify: &VerifyOptions{
			Origin:       a.Handler(0),
			FuzzSeed:     3,
			FuzzEvents:   120,
			ProbeMin:     time.Millisecond,
			ProbeMax:     2 * time.Millisecond,
			InstantProbe: true,
		},
		Configure: func(c *config.Config) {
			configured = true
			c.GlobalProbability = 0.9
		},
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if art.Verification == nil || len(art.Verification.Verified) == 0 {
		t.Fatalf("verification missing or empty: %+v", art.Verification)
	}
	if !configured || art.Config.GlobalProbability != 0.9 {
		t.Fatal("Phase-3 configuration not applied")
	}

	// The artifacts must yield a working proxy.
	origin := a.Handler(0)
	px := art.NewProxy(proxy.UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		return httpmsg.ServeViaHandler(origin, r)
	}), 4)
	defer px.Close()
	env := interp.NewEnv(a.APK.Program, interp.TransportFunc(func(r *httpmsg.Request) (*httpmsg.Response, error) {
		return httpmsg.ServeViaHandler(px, r)
	}), interp.DeviceProps{UserAgent: "Core/1.0", AppVersion: a.APK.Manifest.Version})
	if _, err := env.Call("DDMain.launch"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Call("DDMain.onSelectStore", "0"); err != nil {
		t.Fatal(err)
	}
	px.Drain()
	if snap := px.Stats().Snapshot(); snap.Prefetches == 0 {
		t.Fatal("generated proxy does not prefetch")
	}
}

func TestGenerateFeatureAblation(t *testing.T) {
	a := apps.Wish()
	full, err := Generate(Options{App: a.Name, APK: a.APK})
	if err != nil {
		t.Fatal(err)
	}
	baseline := static.BaselineFeatures()
	abl, err := Generate(Options{App: a.Name, APK: a.APK, Features: &baseline})
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Graph.Deps) >= len(full.Graph.Deps) {
		t.Fatalf("ablated analysis found %d deps, full %d — extensions have no effect",
			len(abl.Graph.Deps), len(full.Graph.Deps))
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
}
