// Package core orchestrates the APPx framework end to end (Figure 4 of the
// paper): Phase 1 takes an app binary and statically extracts message
// signatures and inter-transaction dependencies, then instantiates an
// acceleration proxy from them; Phase 2 tests and verifies the proxy against
// live origins using UI fuzzing, filtering out signatures whose
// reconstructions fail and estimating expiration times; Phase 3 applies the
// service provider's configuration. The result is everything needed to
// deploy an app-specific acceleration proxy.
package core

import (
	"fmt"
	"net/http"
	"time"

	"appx/internal/apk"
	"appx/internal/config"
	"appx/internal/proxy"
	"appx/internal/sig"
	"appx/internal/static"
	"appx/internal/verify"
)

// VerifyOptions configures Phase 2; a nil value skips verification (the
// default configuration is then used as-is).
type VerifyOptions struct {
	// Origin serves the app's live API for the fuzzing session.
	Origin http.Handler
	// FuzzSeed / FuzzEvents configure the event stream.
	FuzzSeed   int64
	FuzzEvents int
	// ProbeMin / ProbeMax bound expiration estimation (see verify.Options).
	ProbeMin, ProbeMax time.Duration
	// InstantProbe skips real sleeping during expiration probing (useful in
	// CI; content-change detection then only sees per-request variation).
	InstantProbe bool
}

// Options configures framework generation for one app.
type Options struct {
	// App is the short app name used in signature IDs.
	App string
	// APK is the application package (the "Android .apk" input).
	APK *apk.APK
	// Features selects static-analysis extensions; nil means all (§4.1).
	Features *static.Features
	// Verify enables Phase 2.
	Verify *VerifyOptions
	// Configure is the Phase-3 hook: the service provider's edits to the
	// initial configuration (expiry overrides, probabilities, conditions,
	// disabled signatures, data budget).
	Configure func(*config.Config)
}

// Artifacts is the framework output: everything a deployment needs.
type Artifacts struct {
	// Graph holds the extracted signatures and dependencies.
	Graph *sig.Graph
	// Config is the effective proxy configuration after all phases.
	Config *config.Config
	// Verification is the Phase-2 report (nil when skipped).
	Verification *verify.Report
}

// Generate runs the framework phases for one app.
func Generate(o Options) (*Artifacts, error) {
	if o.APK == nil {
		return nil, fmt.Errorf("core: no apk")
	}
	if o.App == "" {
		o.App = o.APK.Manifest.Package
	}
	if err := o.APK.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Phase 1: static program analysis → signatures + dependencies.
	feats := static.AllFeatures()
	if o.Features != nil {
		feats = *o.Features
	}
	g, err := static.Analyze(o.APK.Program, o.App, o.APK.Entries(), static.Options{Features: feats})
	if err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}

	art := &Artifacts{Graph: g, Config: config.Default(g)}

	// Phase 2: testing and verification.
	if o.Verify != nil {
		vo := verify.Options{
			APK:        o.APK,
			Graph:      g,
			Origin:     o.Verify.Origin,
			FuzzSeed:   o.Verify.FuzzSeed,
			FuzzEvents: o.Verify.FuzzEvents,
		}
		vo.ProbeMin = o.Verify.ProbeMin
		vo.ProbeMax = o.Verify.ProbeMax
		if o.Verify.InstantProbe {
			vo.Sleep = func(time.Duration) {}
		}
		rep, err := verify.Run(vo)
		if err != nil {
			return nil, fmt.Errorf("core: phase 2: %w", err)
		}
		art.Verification = rep
		art.Config = rep.Config
	}

	// Phase 3: configuration.
	if o.Configure != nil {
		o.Configure(art.Config)
	}
	return art, nil
}

// NewProxy instantiates the acceleration proxy from the artifacts.
func (a *Artifacts) NewProxy(up proxy.Upstream, workers int) *proxy.Proxy {
	return proxy.New(proxy.Options{
		Graph:    a.Graph,
		Config:   a.Config,
		Upstream: up,
		Workers:  workers,
	})
}
