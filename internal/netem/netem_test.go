package netem

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts one connection and echoes everything back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestSerializationDelay(t *testing.T) {
	l := Link{Bandwidth: 8_000} // 1000 bytes/s
	if got := l.serializationDelay(1000); got != time.Second {
		t.Fatalf("serializationDelay = %v, want 1s", got)
	}
	if got := l.serializationDelay(0); got != 0 {
		t.Fatalf("zero bytes delay = %v", got)
	}
	if got := (Link{}).serializationDelay(1 << 20); got != 0 {
		t.Fatalf("unlimited bandwidth delay = %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	l := Link{RTT: 100 * time.Millisecond, Bandwidth: 8_000_000} // 1 MB/s
	got := l.TransferTime(1_000_000)
	want := 50*time.Millisecond + time.Second
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestMobile4G(t *testing.T) {
	l := Mobile4G()
	if l.RTT != 55*time.Millisecond || l.Bandwidth != 25_000_000 {
		t.Fatalf("Mobile4G = %+v", l)
	}
}

func TestRTTCharged(t *testing.T) {
	ln := echoServer(t)
	const rtt = 60 * time.Millisecond
	d := Dialer{Link: Link{RTT: rtt}}
	conn, err := d.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()

	msg := []byte("ping")
	buf := make([]byte, len(msg))
	start := time.Now()
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	elapsed := time.Since(start)
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo = %q", buf)
	}
	if elapsed < rtt {
		t.Fatalf("exchange took %v, want >= %v", elapsed, rtt)
	}
	if elapsed > rtt*5 {
		t.Fatalf("exchange took %v, suspiciously long for RTT %v", elapsed, rtt)
	}
}

func TestBandwidthPacing(t *testing.T) {
	ln := echoServer(t)
	// 800 kbit/s = 100 KB/s; 20 KB payload should take >= ~200 ms one way
	// (and the echo pays it again inbound: >= ~400 ms total).
	d := Dialer{Link: Link{Bandwidth: 800_000}}
	conn, err := d.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()

	payload := bytes.Repeat([]byte("x"), 20_000)
	start := time.Now()
	if _, err := conn.Write(payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	elapsed := time.Since(start)
	if min := 380 * time.Millisecond; elapsed < min {
		t.Fatalf("20KB echo over 100KB/s link took %v, want >= %v", elapsed, min)
	}
}

func TestUnshapedPassThrough(t *testing.T) {
	ln := echoServer(t)
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	wrapped := WrapConn(c, Link{})
	if wrapped != c {
		t.Fatal("zero link should not wrap")
	}
	c.Close()
}

func TestListenerShaping(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	const rtt = 50 * time.Millisecond
	ln := &Listener{Listener: base, Link: Link{RTT: rtt}}
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c)
	}()
	defer ln.Close()

	c, err := net.Dial("tcp", base.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	c.Write([]byte("hi"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if elapsed := time.Since(start); elapsed < rtt {
		t.Fatalf("server-side shaping: exchange took %v, want >= %v", elapsed, rtt)
	}
}

func TestCloseUnblocksRead(t *testing.T) {
	ln := echoServer(t)
	d := Dialer{Link: Link{RTT: 10 * time.Millisecond}}
	conn, err := d.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := conn.Read(buf)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	conn.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Read returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Read did not unblock after Close")
	}
}

func TestPeerCloseEOF(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer base.Close()
	go func() {
		c, err := base.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("bye"))
		c.Close()
	}()
	d := Dialer{Link: Link{RTT: 10 * time.Millisecond}}
	conn, err := d.Dial("tcp", base.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	data, err := io.ReadAll(conn)
	if string(data) != "bye" {
		t.Fatalf("ReadAll = %q, %v", data, err)
	}
}

func TestOrderingPreserved(t *testing.T) {
	ln := echoServer(t)
	d := Dialer{Link: Link{RTT: 5 * time.Millisecond, Bandwidth: 50_000_000}}
	conn, err := d.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	var want bytes.Buffer
	for i := 0; i < 50; i++ {
		chunk := bytes.Repeat([]byte{byte('a' + i%26)}, 100)
		want.Write(chunk)
		if _, err := conn.Write(chunk); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	got := make([]byte, want.Len())
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("byte stream reordered or corrupted")
	}
}
