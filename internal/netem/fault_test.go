package netem

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestFaultDeterminism: two injectors with the same seed and the same
// operation sequence make identical decisions.
func TestFaultDeterminism(t *testing.T) {
	decide := func(seed int64) []bool {
		in := NewInjector(seed)
		in.SetFault("flaky.example", Fault{ConnectRefuseProb: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.ConnectRefused("flaky.example")
		}
		return out
	}
	a, b := decide(7), decide(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between same-seed injectors", i)
		}
	}
	c := decide(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

func TestFaultRefusalRate(t *testing.T) {
	in := NewInjector(42)
	in.SetFault("h", Fault{ConnectRefuseProb: 0.3})
	refused := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if in.ConnectRefused("h") {
			refused++
		}
	}
	if got := float64(refused) / n; got < 0.25 || got > 0.35 {
		t.Fatalf("refusal rate = %.3f, want ~0.30", got)
	}
	if st := in.Stats("h"); st.Refusals != refused {
		t.Fatalf("stats.Refusals = %d, want %d", st.Refusals, refused)
	}
}

func TestFaultUnknownHostPassesThrough(t *testing.T) {
	in := NewInjector(1)
	for i := 0; i < 100; i++ {
		if in.ConnectRefused("clean.example") {
			t.Fatal("unconfigured host was refused")
		}
	}
}

// TestFaultResetMidStream: a ResetProb=1 connection fails its first I/O with
// ErrInjectedReset and stays dead.
func TestFaultResetMidStream(t *testing.T) {
	ln := echoServer(t)
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	in := NewInjector(3)
	in.SetFault("h", Fault{ResetProb: 1})
	fc := in.WrapConn(c, "h")
	defer fc.Close()
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("Write err = %v, want ErrInjectedReset", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("Read after reset err = %v, want ErrInjectedReset", err)
	}
	if st := in.Stats("h"); st.Resets == 0 {
		t.Fatal("no resets counted")
	}
}

// TestFaultSpikeDelaysIO: SpikeProb=1 charges SpikeDelay on each operation.
func TestFaultSpikeDelaysIO(t *testing.T) {
	ln := echoServer(t)
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	in := NewInjector(4)
	const spike = 60 * time.Millisecond
	in.SetFault("h", Fault{SpikeProb: 1, SpikeDelay: spike})
	fc := in.WrapConn(c, "h")
	defer fc.Close()

	start := time.Now()
	if _, err := fc.Write([]byte("ping")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := io.ReadFull(fc, make([]byte, 4)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	// Write and read each pay one spike.
	if elapsed := time.Since(start); elapsed < 2*spike {
		t.Fatalf("spiked exchange took %v, want >= %v", elapsed, 2*spike)
	}
	if st := in.Stats("h"); st.Spikes < 2 {
		t.Fatalf("spikes counted = %d, want >= 2", st.Spikes)
	}
}

// TestFaultStallInterruptedByClose: a stalled operation unblocks when the
// connection is closed.
func TestFaultStallInterruptedByClose(t *testing.T) {
	ln := echoServer(t)
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	in := NewInjector(5)
	in.SetFault("h", Fault{StallProb: 1, StallDelay: time.Minute})
	fc := in.WrapConn(c, "h")
	errc := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("x"))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("stalled write returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled write did not unblock on Close")
	}
}

// TestFaultDial: refusal at 1.0 never reaches the network; at 0.0 the dial
// succeeds and traffic flows through the wrapped conn.
func TestFaultDial(t *testing.T) {
	ln := echoServer(t)
	in := NewInjector(6)
	in.SetFault("dead", Fault{ConnectRefuseProb: 1})
	if _, err := in.Dial("tcp", ln.Addr().String(), "dead"); !errors.Is(err, ErrInjectedRefusal) {
		t.Fatalf("Dial err = %v, want ErrInjectedRefusal", err)
	}
	c, err := in.Dial("tcp", ln.Addr().String(), "alive")
	if err != nil {
		t.Fatalf("Dial healthy host: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
}

// TestFaultListener: with refusal probability 1 every accepted connection is
// closed before the client can complete an exchange.
func TestFaultListener(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer base.Close()
	in := NewInjector(9)
	in.SetFault("h", Fault{ConnectRefuseProb: 1})
	ln := in.Listener(base, "h")
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()

	c, err := net.Dial("tcp", base.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	c.Write([]byte("x"))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("exchange succeeded through a 100%-refusing listener")
	}
}

// TestFaultDirRead: a read-direction stall delays reads but leaves writes
// prompt — the asymmetric-link model.
func TestFaultDirRead(t *testing.T) {
	ln := echoServer(t)
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	in := NewInjector(11)
	const stall = 80 * time.Millisecond
	in.SetFault("h", Fault{StallProb: 1, StallDelay: stall, Dir: DirRead})
	fc := in.WrapConn(c, "h")
	defer fc.Close()

	start := time.Now()
	if _, err := fc.Write([]byte("ping")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if wrote := time.Since(start); wrote > stall/2 {
		t.Fatalf("write under DirRead stall took %v, want fast", wrote)
	}
	start = time.Now()
	if _, err := io.ReadFull(fc, make([]byte, 4)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if read := time.Since(start); read < stall {
		t.Fatalf("read under DirRead stall took %v, want >= %v", read, stall)
	}
}

// TestFaultDirWrite: the mirror case — writes crawl, reads stay clean.
func TestFaultDirWrite(t *testing.T) {
	ln := echoServer(t)
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	in := NewInjector(12)
	const stall = 80 * time.Millisecond
	in.SetFault("h", Fault{StallProb: 1, StallDelay: stall, Dir: DirWrite})
	fc := in.WrapConn(c, "h")
	defer fc.Close()

	start := time.Now()
	if _, err := fc.Write([]byte("ping")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if wrote := time.Since(start); wrote < stall {
		t.Fatalf("write under DirWrite stall took %v, want >= %v", wrote, stall)
	}
	start = time.Now()
	if _, err := io.ReadFull(fc, make([]byte, 4)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if read := time.Since(start); read > stall/2 {
		t.Fatalf("read under DirWrite stall took %v, want fast", read)
	}
}

// TestFaultSlowDrip: a dripping link delivers every byte but pays DripDelay
// between chunks, and the write is counted as one drip event.
func TestFaultSlowDrip(t *testing.T) {
	ln := echoServer(t)
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	in := NewInjector(13)
	const chunk, pause = 4, 20 * time.Millisecond
	in.SetFault("h", Fault{DripBytes: chunk, DripDelay: pause})
	fc := in.WrapConn(c, "h")
	defer fc.Close()

	msg := []byte("0123456789abcdef") // 16 bytes → 4 chunks → 3 pauses
	start := time.Now()
	if n, err := fc.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v; want %d, nil", n, err, len(msg))
	}
	if elapsed := time.Since(start); elapsed < 3*pause {
		t.Fatalf("dripped write took %v, want >= %v", elapsed, 3*pause)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(fc, got); err != nil || string(got) != string(msg) {
		t.Fatalf("echo = %q, %v", got, err)
	}
	if st := in.Stats("h"); st.Drips != 1 {
		t.Fatalf("drips counted = %d, want 1", st.Drips)
	}
}

// TestFaultDripDirRead: a drip restricted to reads leaves writes whole.
func TestFaultDripDirRead(t *testing.T) {
	ln := echoServer(t)
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	in := NewInjector(14)
	in.SetFault("h", Fault{DripBytes: 2, DripDelay: 50 * time.Millisecond, Dir: DirRead})
	fc := in.WrapConn(c, "h")
	defer fc.Close()

	start := time.Now()
	if _, err := fc.Write([]byte("0123456789abcdef")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("write under DirRead drip took %v, want undripped", elapsed)
	}
	if st := in.Stats("h"); st.Drips != 0 {
		t.Fatalf("drips counted = %d, want 0", st.Drips)
	}
}

// TestFaultSever: Sever kills live wrapped connections — a blocked operation
// unblocks with an error and later I/O fails — and counts victims.
func TestFaultSever(t *testing.T) {
	ln := echoServer(t)
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	in := NewInjector(15)
	in.SetFault("h", Fault{StallProb: 1, StallDelay: time.Minute})
	fc1 := in.WrapConn(c1, "h")
	fc2 := in.WrapConn(c2, "h")

	errc := make(chan error, 1)
	go func() {
		_, err := fc1.Write([]byte("x"))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if n := in.Sever("h"); n != 2 {
		t.Fatalf("Sever cut %d conns, want 2", n)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("stalled write returned nil after Sever")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled write did not unblock on Sever")
	}
	in.SetFault("h", Fault{})
	if _, err := fc2.Write([]byte("x")); err == nil {
		t.Fatal("write on severed conn succeeded")
	}
	if st := in.Stats("h"); st.Severed != 2 {
		t.Fatalf("severed counted = %d, want 2", st.Severed)
	}
	if n := in.Sever("h"); n != 0 {
		t.Fatalf("second Sever cut %d conns, want 0", n)
	}
}

// TestFaultDialContext: refusals fire before the network, and the wrapped
// conn carries the host's fault model.
func TestFaultDialContext(t *testing.T) {
	ln := echoServer(t)
	in := NewInjector(16)
	in.SetFault("dead", Fault{ConnectRefuseProb: 1})
	ctx := context.Background()
	if _, err := in.DialContext(ctx, "tcp", ln.Addr().String(), "dead"); !errors.Is(err, ErrInjectedRefusal) {
		t.Fatalf("DialContext err = %v, want ErrInjectedRefusal", err)
	}
	c, err := in.DialContext(ctx, "tcp", ln.Addr().String(), "alive")
	if err != nil {
		t.Fatalf("DialContext healthy host: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("echo = %q, %v", buf, err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := in.DialContext(canceled, "tcp", ln.Addr().String(), "alive"); err == nil {
		t.Fatal("DialContext with canceled ctx succeeded")
	}
}
