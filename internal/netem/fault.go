package netem

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault describes the failure behaviour of one origin host's link. All
// probabilities are in [0, 1]; zero-valued faults inject nothing.
//
// The model covers the origin-side pathologies a mobile acceleration proxy
// meets in the wild: servers that stop accepting connections, connections
// cut mid-response, transient latency spikes, and stalls where the peer
// stays connected but sends nothing.
type Fault struct {
	// ConnectRefuseProb is the probability a new connection attempt is
	// refused outright.
	ConnectRefuseProb float64
	// ResetProb is the per-I/O-operation probability the connection is
	// reset (the operation fails and the connection becomes unusable).
	ResetProb float64
	// SpikeProb is the per-I/O-operation probability of an added latency
	// spike of SpikeDelay.
	SpikeProb float64
	// SpikeDelay is the extra delay charged when a spike fires.
	SpikeDelay time.Duration
	// StallProb is the per-I/O-operation probability the operation hangs
	// for StallDelay before proceeding (a slowloris-style stall).
	StallProb float64
	// StallDelay is how long a stall lasts.
	StallDelay time.Duration
}

// zero reports whether the fault injects nothing.
func (f Fault) zero() bool {
	return f.ConnectRefuseProb <= 0 && f.ResetProb <= 0 && f.SpikeProb <= 0 && f.StallProb <= 0
}

// ErrInjectedReset is returned by reads and writes on a connection the
// injector has reset mid-stream.
var ErrInjectedReset = errors.New("netem: connection reset (injected fault)")

// ErrInjectedRefusal is returned for connection attempts the injector
// refuses.
var ErrInjectedRefusal = errors.New("netem: connection refused (injected fault)")

// FaultStats counts the events one host's fault configuration has injected.
type FaultStats struct {
	Refusals int
	Resets   int
	Spikes   int
	Stalls   int
}

// Injector draws fault decisions from a single seeded source, so a fixed
// seed and a fixed sequence of operations reproduce the exact same failure
// pattern. Safe for concurrent use; determinism across runs additionally
// requires a deterministic operation order (single-threaded drivers).
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults map[string]Fault
	stats  map[string]*FaultStats
}

// NewInjector returns an injector seeded for reproducible draws.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		faults: map[string]Fault{},
		stats:  map[string]*FaultStats{},
	}
}

// SetFault installs (or replaces) the fault model for one host.
func (in *Injector) SetFault(host string, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults[host] = f
}

// Fault returns the host's current fault model (zero when none is set).
func (in *Injector) Fault(host string) Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults[host]
}

// Stats returns the event counts injected for one host so far.
func (in *Injector) Stats(host string) FaultStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.stats[host]; st != nil {
		return *st
	}
	return FaultStats{}
}

func (in *Injector) stat(host string) *FaultStats {
	st := in.stats[host]
	if st == nil {
		st = &FaultStats{}
		in.stats[host] = st
	}
	return st
}

// ConnectRefused draws the connect-refusal decision for one attempt against
// host. Callers that establish their own connections (custom dialers, fake
// upstreams in tests) use it as the decision engine without real sockets.
func (in *Injector) ConnectRefused(host string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	f := in.faults[host]
	if f.ConnectRefuseProb <= 0 {
		return false
	}
	if in.rng.Float64() < f.ConnectRefuseProb {
		in.stat(host).Refusals++
		return true
	}
	return false
}

// ioDecision is one pre-I/O draw: at most one fault fires per operation,
// checked in severity order (reset > stall > spike).
type ioDecision struct {
	reset bool
	delay time.Duration
}

func (in *Injector) drawIO(host string) ioDecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	f := in.faults[host]
	if f.zero() {
		return ioDecision{}
	}
	switch {
	case f.ResetProb > 0 && in.rng.Float64() < f.ResetProb:
		in.stat(host).Resets++
		return ioDecision{reset: true}
	case f.StallProb > 0 && in.rng.Float64() < f.StallProb:
		in.stat(host).Stalls++
		return ioDecision{delay: f.StallDelay}
	case f.SpikeProb > 0 && in.rng.Float64() < f.SpikeProb:
		in.stat(host).Spikes++
		return ioDecision{delay: f.SpikeDelay}
	}
	return ioDecision{}
}

// WrapConn runs an existing connection through host's fault model: each
// read and write may be delayed (spike/stall) or fail with an injected
// reset. Compose with the Link shaping of WrapConn/Listener to emulate a
// flaky WAN hop.
func (in *Injector) WrapConn(c net.Conn, host string) net.Conn {
	if in == nil {
		return c
	}
	return &faultConn{Conn: c, in: in, host: host}
}

// Dial connects like net.Dial but subject to host's fault model: the
// attempt may be refused, and the returned connection is wrapped.
func (in *Injector) Dial(network, addr, host string) (net.Conn, error) {
	if in.ConnectRefused(host) {
		return nil, ErrInjectedRefusal
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(c, host), nil
}

// Listener wraps ln so every accepted connection runs through host's fault
// model (refusals become immediate closes of the accepted connection).
func (in *Injector) Listener(ln net.Listener, host string) net.Listener {
	return &faultListener{Listener: ln, in: in, host: host}
}

type faultListener struct {
	net.Listener
	in   *Injector
	host string
}

func (fl *faultListener) Accept() (net.Conn, error) {
	for {
		c, err := fl.Listener.Accept()
		if err != nil {
			return nil, err
		}
		// A "refused" connect on the accept side: close immediately so the
		// peer sees the connection die during establishment.
		if fl.in.ConnectRefused(fl.host) {
			c.Close()
			continue
		}
		return fl.in.WrapConn(c, fl.host), nil
	}
}

// faultConn applies per-operation fault draws to both directions.
type faultConn struct {
	net.Conn
	in   *Injector
	host string

	mu    sync.Mutex
	dead  bool
	donec chan struct{} // lazily built close signal for interruptible delays
}

func (c *faultConn) done() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.donec == nil {
		c.donec = make(chan struct{})
		if c.dead {
			close(c.donec)
		}
	}
	return c.donec
}

// apply performs one fault draw; it returns an error when the connection is
// (or becomes) reset.
func (c *faultConn) apply() error {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return ErrInjectedReset
	}
	c.mu.Unlock()
	d := c.in.drawIO(c.host)
	if d.reset {
		c.kill()
		return ErrInjectedReset
	}
	if d.delay > 0 {
		select {
		case <-time.After(d.delay):
		case <-c.done():
			return net.ErrClosed
		}
	}
	return nil
}

// kill marks the connection dead and severs the transport so blocked peers
// notice.
func (c *faultConn) kill() {
	c.mu.Lock()
	if !c.dead {
		c.dead = true
		if c.donec != nil {
			close(c.donec)
		}
	}
	c.mu.Unlock()
	c.Conn.Close()
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := c.apply(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.apply(); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	c.mu.Lock()
	if !c.dead {
		c.dead = true
		if c.donec != nil {
			close(c.donec)
		}
	}
	c.mu.Unlock()
	return c.Conn.Close()
}
