package netem

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultDir restricts a fault's delay behaviours (stalls, spikes, drips) to
// one transfer direction, modelling asymmetric mobile paths where one
// direction of a link degrades while the other stays clean. Resets and
// refusals are connection-level events and always apply regardless of
// direction.
type FaultDir int

const (
	// DirBoth applies delay faults to reads and writes alike (the default).
	DirBoth FaultDir = iota
	// DirRead applies delay faults only to reads — the peer's responses
	// arrive late or trickle in, but our sends leave promptly.
	DirRead
	// DirWrite applies delay faults only to writes — our sends crawl while
	// the peer's responses arrive clean.
	DirWrite
)

// Fault describes the failure behaviour of one origin host's link. All
// probabilities are in [0, 1]; zero-valued faults inject nothing.
//
// The model covers the origin-side pathologies a mobile acceleration proxy
// meets in the wild: servers that stop accepting connections, connections
// cut mid-response, transient latency spikes, and stalls where the peer
// stays connected but sends nothing.
type Fault struct {
	// ConnectRefuseProb is the probability a new connection attempt is
	// refused outright.
	ConnectRefuseProb float64
	// ResetProb is the per-I/O-operation probability the connection is
	// reset (the operation fails and the connection becomes unusable).
	ResetProb float64
	// SpikeProb is the per-I/O-operation probability of an added latency
	// spike of SpikeDelay.
	SpikeProb float64
	// SpikeDelay is the extra delay charged when a spike fires.
	SpikeDelay time.Duration
	// StallProb is the per-I/O-operation probability the operation hangs
	// for StallDelay before proceeding (a slowloris-style stall).
	StallProb float64
	// StallDelay is how long a stall lasts.
	StallDelay time.Duration
	// Dir restricts stalls, spikes, and drips to one transfer direction
	// (DirBoth applies them to reads and writes alike). Resets and refusals
	// ignore it: a dead connection is dead in both directions.
	Dir FaultDir
	// DripBytes, with DripDelay, turns affected writes into a slow drip:
	// every write is chopped into DripBytes-sized chunks with DripDelay
	// between them — the peer stays connected and data flows, just
	// painfully. Unlike the probabilistic faults, a configured drip applies
	// to every affected write.
	DripBytes int
	// DripDelay is the pause between drip chunks.
	DripDelay time.Duration
}

// zero reports whether the fault injects nothing.
func (f Fault) zero() bool {
	return f.ConnectRefuseProb <= 0 && f.ResetProb <= 0 && f.SpikeProb <= 0 && f.StallProb <= 0 &&
		(f.DripBytes <= 0 || f.DripDelay <= 0)
}

// dripping reports whether the fault slow-drips affected writes.
func (f Fault) dripping() bool { return f.DripBytes > 0 && f.DripDelay > 0 }

// affects reports whether the fault's delay behaviours apply to dir.
func (f Fault) affects(dir FaultDir) bool {
	return f.Dir == DirBoth || f.Dir == dir
}

// Partition is the fault that fully severs a link: every new connection is
// refused and every in-flight operation resets. Pair with Injector.Sever so
// pooled keep-alive connections die too, not just future dials.
func Partition() Fault {
	return Fault{ConnectRefuseProb: 1, ResetProb: 1}
}

// ErrInjectedReset is returned by reads and writes on a connection the
// injector has reset mid-stream.
var ErrInjectedReset = errors.New("netem: connection reset (injected fault)")

// ErrInjectedRefusal is returned for connection attempts the injector
// refuses.
var ErrInjectedRefusal = errors.New("netem: connection refused (injected fault)")

// FaultStats counts the events one host's fault configuration has injected.
type FaultStats struct {
	Refusals int
	Resets   int
	Spikes   int
	Stalls   int
	// Drips counts writes that were slow-dripped in chunks.
	Drips int
	// Severed counts live connections killed by Sever.
	Severed int
}

// Injector draws fault decisions from a single seeded source, so a fixed
// seed and a fixed sequence of operations reproduce the exact same failure
// pattern. Safe for concurrent use; determinism across runs additionally
// requires a deterministic operation order (single-threaded drivers).
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults map[string]Fault
	stats  map[string]*FaultStats
	// conns tracks live wrapped connections per host so Sever can cut a
	// link's pooled keep-alives, not just refuse its future dials.
	conns map[string]map[*faultConn]struct{}
}

// NewInjector returns an injector seeded for reproducible draws.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		faults: map[string]Fault{},
		stats:  map[string]*FaultStats{},
		conns:  map[string]map[*faultConn]struct{}{},
	}
}

// SetFault installs (or replaces) the fault model for one host.
func (in *Injector) SetFault(host string, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults[host] = f
}

// Fault returns the host's current fault model (zero when none is set).
func (in *Injector) Fault(host string) Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults[host]
}

// Stats returns the event counts injected for one host so far.
func (in *Injector) Stats(host string) FaultStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.stats[host]; st != nil {
		return *st
	}
	return FaultStats{}
}

// Sever kills every live wrapped connection for host: blocked reads and
// writes return immediately and the transport sockets close, so pooled
// keep-alive connections cannot tunnel through a partition installed with
// SetFault. Returns how many connections were cut.
func (in *Injector) Sever(host string) int {
	in.mu.Lock()
	victims := make([]*faultConn, 0, len(in.conns[host]))
	for c := range in.conns[host] {
		victims = append(victims, c)
	}
	in.stat(host).Severed += len(victims)
	in.mu.Unlock()
	// kill takes each conn's own lock and re-enters in.mu via unregister;
	// never hold in.mu across it.
	for _, c := range victims {
		c.kill()
	}
	return len(victims)
}

func (in *Injector) register(c *faultConn) {
	in.mu.Lock()
	set := in.conns[c.host]
	if set == nil {
		set = map[*faultConn]struct{}{}
		in.conns[c.host] = set
	}
	set[c] = struct{}{}
	in.mu.Unlock()
}

func (in *Injector) unregister(c *faultConn) {
	in.mu.Lock()
	delete(in.conns[c.host], c)
	in.mu.Unlock()
}

func (in *Injector) stat(host string) *FaultStats {
	st := in.stats[host]
	if st == nil {
		st = &FaultStats{}
		in.stats[host] = st
	}
	return st
}

// ConnectRefused draws the connect-refusal decision for one attempt against
// host. Callers that establish their own connections (custom dialers, fake
// upstreams in tests) use it as the decision engine without real sockets.
func (in *Injector) ConnectRefused(host string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	f := in.faults[host]
	if f.ConnectRefuseProb <= 0 {
		return false
	}
	if in.rng.Float64() < f.ConnectRefuseProb {
		in.stat(host).Refusals++
		return true
	}
	return false
}

// ioDecision is one pre-I/O draw: at most one fault fires per operation,
// checked in severity order (reset > stall > spike); an active drip rides
// along independently on writes.
type ioDecision struct {
	reset     bool
	delay     time.Duration
	dripBytes int
	dripDelay time.Duration
}

func (in *Injector) drawIO(host string, dir FaultDir) ioDecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	f := in.faults[host]
	if f.zero() {
		return ioDecision{}
	}
	var d ioDecision
	if dir == DirWrite && f.dripping() && f.affects(DirWrite) {
		d.dripBytes, d.dripDelay = f.DripBytes, f.DripDelay
	}
	affected := f.affects(dir)
	switch {
	case f.ResetProb > 0 && in.rng.Float64() < f.ResetProb:
		in.stat(host).Resets++
		return ioDecision{reset: true}
	case affected && f.StallProb > 0 && in.rng.Float64() < f.StallProb:
		in.stat(host).Stalls++
		d.delay = f.StallDelay
	case affected && f.SpikeProb > 0 && in.rng.Float64() < f.SpikeProb:
		in.stat(host).Spikes++
		d.delay = f.SpikeDelay
	}
	return d
}

// WrapConn runs an existing connection through host's fault model: each
// read and write may be delayed (spike/stall) or fail with an injected
// reset. Compose with the Link shaping of WrapConn/Listener to emulate a
// flaky WAN hop.
func (in *Injector) WrapConn(c net.Conn, host string) net.Conn {
	if in == nil {
		return c
	}
	fc := &faultConn{Conn: c, in: in, host: host}
	in.register(fc)
	return fc
}

// Dial connects like net.Dial but subject to host's fault model: the
// attempt may be refused, and the returned connection is wrapped.
func (in *Injector) Dial(network, addr, host string) (net.Conn, error) {
	if in.ConnectRefused(host) {
		return nil, ErrInjectedRefusal
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(c, host), nil
}

// DialContext is Dial with context plumbing, shaped to drop into
// http.Transport.DialContext: the attempt may be refused, honours ctx
// cancellation while connecting, and the returned connection is wrapped in
// host's fault model.
func (in *Injector) DialContext(ctx context.Context, network, addr, host string) (net.Conn, error) {
	if in.ConnectRefused(host) {
		return nil, ErrInjectedRefusal
	}
	var d net.Dialer
	c, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(c, host), nil
}

// Listener wraps ln so every accepted connection runs through host's fault
// model (refusals become immediate closes of the accepted connection).
func (in *Injector) Listener(ln net.Listener, host string) net.Listener {
	return &faultListener{Listener: ln, in: in, host: host}
}

type faultListener struct {
	net.Listener
	in   *Injector
	host string
}

func (fl *faultListener) Accept() (net.Conn, error) {
	for {
		c, err := fl.Listener.Accept()
		if err != nil {
			return nil, err
		}
		// A "refused" connect on the accept side: close immediately so the
		// peer sees the connection die during establishment.
		if fl.in.ConnectRefused(fl.host) {
			c.Close()
			continue
		}
		return fl.in.WrapConn(c, fl.host), nil
	}
}

// faultConn applies per-operation fault draws to both directions.
type faultConn struct {
	net.Conn
	in   *Injector
	host string

	mu    sync.Mutex
	dead  bool
	donec chan struct{} // lazily built close signal for interruptible delays
}

func (c *faultConn) done() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.donec == nil {
		c.donec = make(chan struct{})
		if c.dead {
			close(c.donec)
		}
	}
	return c.donec
}

// apply performs one fault draw for dir; it returns the decision and an
// error when the connection is (or becomes) reset.
func (c *faultConn) apply(dir FaultDir) (ioDecision, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return ioDecision{}, ErrInjectedReset
	}
	c.mu.Unlock()
	d := c.in.drawIO(c.host, dir)
	if d.reset {
		c.kill()
		return d, ErrInjectedReset
	}
	if d.delay > 0 {
		if err := c.sleep(d.delay); err != nil {
			return d, err
		}
	}
	return d, nil
}

// sleep waits interruptibly: a kill (reset or Sever) or Close wakes it.
func (c *faultConn) sleep(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.done():
		return net.ErrClosed
	}
}

// kill marks the connection dead and severs the transport so blocked peers
// notice.
func (c *faultConn) kill() {
	c.mu.Lock()
	if !c.dead {
		c.dead = true
		if c.donec != nil {
			close(c.donec)
		}
	}
	c.mu.Unlock()
	c.in.unregister(c)
	c.Conn.Close()
}

func (c *faultConn) Read(p []byte) (int, error) {
	if _, err := c.apply(DirRead); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	d, err := c.apply(DirWrite)
	if err != nil {
		return 0, err
	}
	if d.dripBytes <= 0 || len(p) <= d.dripBytes {
		return c.Conn.Write(p)
	}
	// Slow drip: the bytes all go out, chunk by chunk, with a pause between
	// chunks — a link that works but crawls. One drip event per write.
	c.in.mu.Lock()
	c.in.stat(c.host).Drips++
	c.in.mu.Unlock()
	written := 0
	for written < len(p) {
		if written > 0 {
			if err := c.sleep(d.dripDelay); err != nil {
				return written, err
			}
		}
		end := written + d.dripBytes
		if end > len(p) {
			end = len(p)
		}
		n, err := c.Conn.Write(p[written:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

func (c *faultConn) Close() error {
	c.mu.Lock()
	if !c.dead {
		c.dead = true
		if c.donec != nil {
			close(c.donec)
		}
	}
	c.mu.Unlock()
	c.in.unregister(c)
	return c.Conn.Close()
}
