// Package netem emulates wide-area network links over in-process TCP
// connections.
//
// The APPx evaluation (§6.2 of the paper) places the emulated handset behind
// a 55 ms RTT / 25 Mbps link to the proxy, and sweeps the proxy↔origin RTT
// between 50 and 150 ms. This package provides that substrate: a Link
// describes one direction-symmetric hop (propagation delay = RTT/2 each way,
// plus store-and-forward serialization at a configured bandwidth), and
// Dialer/Listener wrap net.Conn so that every byte crossing the hop pays the
// configured cost.
//
// The emulation is a classic store-and-forward model: each written chunk is
// released to the underlying connection at
//
//	release = max(previous release, now) + len/bandwidth
//
// and becomes visible to the peer RTT/2 later. Both directions are shaped,
// so a request/response exchange pays one full RTT plus serialization, just
// like a real link.
package netem

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// Link describes one emulated hop.
type Link struct {
	// RTT is the round-trip propagation delay of the hop. Each direction
	// delays delivery by RTT/2.
	RTT time.Duration
	// Bandwidth is the link rate in bits per second. Zero means unlimited.
	Bandwidth int64
}

// Mobile4G reflects the average 4G access link the paper configures between
// client and proxy: 55 ms RTT, 25 Mbps.
func Mobile4G() Link {
	return Link{RTT: 55 * time.Millisecond, Bandwidth: 25_000_000}
}

// serializationDelay returns the time n bytes occupy the link.
func (l Link) serializationDelay(n int) time.Duration {
	if l.Bandwidth <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) * 8 / float64(l.Bandwidth) * float64(time.Second))
}

// TransferTime estimates the total time for a payload of n bytes to cross
// the hop in one direction (propagation + serialization). The experiment
// harness uses it for sanity checks.
func (l Link) TransferTime(n int) time.Duration {
	return l.RTT/2 + l.serializationDelay(n)
}

// Dialer dials TCP connections shaped by a Link.
type Dialer struct {
	Link Link
	// Timeout bounds connection establishment (not shaped). Zero means no
	// bound beyond the context's.
	Timeout time.Duration
}

// Dial connects to addr and returns a shaped connection.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	return d.DialContext(context.Background(), network, addr)
}

// DialContext connects to addr and returns a shaped connection.
func (d *Dialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	nd := net.Dialer{Timeout: d.Timeout}
	c, err := nd.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return WrapConn(c, d.Link), nil
}

// Listener wraps an accepting listener so every accepted connection is
// shaped by the Link. Shape a hop on exactly one side (dialer or listener),
// not both, or the hop pays double.
type Listener struct {
	net.Listener
	Link Link
}

// Accept waits for a connection and wraps it.
func (ln *Listener) Accept() (net.Conn, error) {
	c, err := ln.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, ln.Link), nil
}

// WrapConn shapes an existing connection with the link model in both
// directions.
func WrapConn(c net.Conn, link Link) net.Conn {
	if link.RTT <= 0 && link.Bandwidth <= 0 {
		return c
	}
	sc := &shapedConn{
		Conn:  c,
		link:  link,
		inbox: newDelayQueue(),
	}
	sc.done = make(chan struct{})
	go sc.readLoop()
	return sc
}

// shapedConn delays and paces both directions.
//
// Writes are paced synchronously: Write sleeps until the chunk's release
// time. The propagation component of the write direction and the whole read
// direction are applied on the read side via a delay queue filled by a
// background reader goroutine (bytes become visible RTT/2 after arrival,
// which combined with the peer's own send shaping yields the full RTT per
// exchange when both endpoints wrap their conn — or here, where only one
// side wraps, the single wrapper charges both directions itself).
type shapedConn struct {
	net.Conn
	link Link

	mu          sync.Mutex
	nextRelease time.Time

	inbox *delayQueue
	done  chan struct{}
}

func (c *shapedConn) Write(p []byte) (int, error) {
	// Pace by serialization delay and hold the propagation delay before the
	// bytes reach the wire, emulating the one-way trip.
	c.mu.Lock()
	now := time.Now()
	rel := c.nextRelease
	if rel.Before(now) {
		rel = now
	}
	rel = rel.Add(c.link.serializationDelay(len(p)))
	c.nextRelease = rel
	c.mu.Unlock()

	delay := time.Until(rel.Add(c.link.RTT / 2))
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-c.done:
			return 0, net.ErrClosed
		}
	}
	return c.Conn.Write(p)
}

func (c *shapedConn) readLoop() {
	buf := make([]byte, 32*1024)
	for {
		n, err := c.Conn.Read(buf)
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			// Inbound propagation + serialization for the return direction.
			ready := time.Now().Add(c.link.RTT/2 + c.link.serializationDelay(n))
			c.inbox.push(chunk{data: data, readyAt: ready})
		}
		if err != nil {
			c.inbox.closeWith(err)
			return
		}
	}
}

func (c *shapedConn) Read(p []byte) (int, error) {
	return c.inbox.read(p, c.done)
}

func (c *shapedConn) Close() error {
	c.mu.Lock()
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	c.mu.Unlock()
	return c.Conn.Close()
}

// chunk is a delayed unit of inbound data.
type chunk struct {
	data    []byte
	readyAt time.Time
}

// delayQueue delivers chunks no earlier than their readyAt instants, in
// order. Waiting readers are woken through channels rather than a sync.Cond:
// the signal channel's one-token buffer means a push that lands between a
// reader releasing the lock and entering its select leaves the token behind,
// so the wakeup cannot be lost.
type delayQueue struct {
	mu     sync.Mutex
	signal chan struct{} // capacity 1: "queue state changed" hint
	closed chan struct{} // closed once err is set
	chunks []chunk
	err    error
}

func newDelayQueue() *delayQueue {
	return &delayQueue{signal: make(chan struct{}, 1), closed: make(chan struct{})}
}

func (q *delayQueue) push(c chunk) {
	q.mu.Lock()
	q.chunks = append(q.chunks, c)
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

func (q *delayQueue) closeWith(err error) {
	if err == nil {
		err = errors.New("netem: stream closed")
	}
	q.mu.Lock()
	first := q.err == nil
	if first {
		q.err = err
	}
	q.mu.Unlock()
	if first {
		close(q.closed)
	}
}

func (q *delayQueue) read(p []byte, done <-chan struct{}) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		select {
		case <-done:
			return 0, net.ErrClosed
		default:
		}
		if len(q.chunks) > 0 {
			head := &q.chunks[0]
			wait := time.Until(head.readyAt)
			if wait > 0 {
				// Sleep outside the lock, then re-check.
				q.mu.Unlock()
				select {
				case <-time.After(wait):
				case <-done:
					q.mu.Lock()
					return 0, net.ErrClosed
				}
				q.mu.Lock()
				continue
			}
			n := copy(p, head.data)
			if n == len(head.data) {
				q.chunks = q.chunks[1:]
			} else {
				head.data = head.data[n:]
			}
			return n, nil
		}
		if q.err != nil {
			return 0, q.err
		}
		// Wait for a push or close; a stale token just re-runs the loop.
		q.mu.Unlock()
		select {
		case <-q.signal:
		case <-q.closed:
		case <-done:
			q.mu.Lock()
			return 0, net.ErrClosed
		}
		q.mu.Lock()
	}
}
