// Package config implements the APPx proxy configuration (§4.4 of the
// paper, Figure 9): per-signature prefetching policies that let the app
// service provider control side-effects and cost without touching the
// automated analysis.
//
// Supported policy fields mirror the paper's seven: hash, uri (readability
// only), expiration_time, prefetch, probability, add_header, and condition.
// The package also carries the global knobs §4.4 and C4 describe: a global
// prefetch probability and a data-usage budget.
package config

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"appx/internal/jsonpath"
	"appx/internal/sig"
)

// Duration is a time.Duration that serializes as a human-readable string
// ("90s", "1h30m") like the paper's "1 day" examples.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("config: bad duration %q: %w", s, perr)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("config: bad duration %s", b)
	}
	*d = Duration(n)
	return nil
}

// Header is one add_header entry.
type Header struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Condition gates prefetching on a predecessor response field (§4.4: e.g.
// prefetch only when the "price" field is greater than "1000").
type Condition struct {
	// Field is the JSON path into the predecessor response.
	Field string `json:"field"`
	// Op is one of "gt", "lt", "ge", "le", "eq", "ne", "contains".
	Op string `json:"op"`
	// Value is the comparison operand; numeric comparison is used when both
	// sides parse as numbers.
	Value string `json:"value"`
}

// Eval evaluates the condition against a parsed predecessor response body.
// A missing field fails the condition.
func (c *Condition) Eval(doc any) bool {
	if c == nil {
		return true
	}
	p, err := jsonpath.Parse(c.Field)
	if err != nil {
		return false
	}
	vals := jsonpath.ExtractStrings(doc, p)
	for _, v := range vals {
		if compare(v, c.Op, c.Value) {
			return true
		}
	}
	return false
}

func compare(a, op, b string) bool {
	af, aerr := strconv.ParseFloat(a, 64)
	bf, berr := strconv.ParseFloat(b, 64)
	numeric := aerr == nil && berr == nil
	switch op {
	case "gt":
		if numeric {
			return af > bf
		}
		return a > b
	case "lt":
		if numeric {
			return af < bf
		}
		return a < b
	case "ge":
		if numeric {
			return af >= bf
		}
		return a >= b
	case "le":
		if numeric {
			return af <= bf
		}
		return a <= b
	case "eq":
		return a == b
	case "ne":
		return a != b
	case "contains":
		return strings.Contains(a, b)
	default:
		return false
	}
}

// Policy is one signature's prefetching policy (Figure 9).
type Policy struct {
	Hash           string     `json:"hash"`
	URI            string     `json:"uri"`
	ExpirationTime Duration   `json:"expiration_time"`
	Prefetch       bool       `json:"prefetch"`
	Probability    float64    `json:"probability"`
	AddHeader      []Header   `json:"add_header,omitempty"`
	Condition      *Condition `json:"condition,omitempty"`
}

// Resilience holds the origin-path fault-handling knobs: how hard the proxy
// retries, when a sick host's circuit breaker trips, and how failing
// prefetch signatures back off. Zero values mean "use the default" so a
// config file may set only the fields it cares about.
type Resilience struct {
	// RetryAttempts bounds total tries per idempotent (GET/HEAD) origin
	// request, including the first (default 2: one fast retry).
	RetryAttempts int `json:"retry_attempts,omitempty"`
	// RetryBaseDelay seeds the capped full-jitter exponential backoff
	// between attempts (default 50ms).
	RetryBaseDelay Duration `json:"retry_base_delay,omitempty"`
	// RetryMaxDelay caps the backoff (default 2s).
	RetryMaxDelay Duration `json:"retry_max_delay,omitempty"`
	// AttemptTimeout bounds each individual origin attempt (default 15s),
	// replacing the old single whole-request timeout.
	AttemptTimeout Duration `json:"attempt_timeout,omitempty"`
	// BreakerFailures is the consecutive-failure count that opens a host's
	// circuit breaker (default 5).
	BreakerFailures int `json:"breaker_failures,omitempty"`
	// BreakerOpenTimeout is how long an open breaker rejects before
	// admitting a half-open probe (default 10s).
	BreakerOpenTimeout Duration `json:"breaker_open_timeout,omitempty"`
	// PrefetchFailureLimit is the consecutive prefetch-failure count after
	// which a signature is suspended (default 3).
	PrefetchFailureLimit int `json:"prefetch_failure_limit,omitempty"`
	// PrefetchBackoffBase is the first suspension period; it doubles per
	// further consecutive failure (default 1s).
	PrefetchBackoffBase Duration `json:"prefetch_backoff_base,omitempty"`
	// PrefetchBackoffMax caps the suspension period (default 5m).
	PrefetchBackoffMax Duration `json:"prefetch_backoff_max,omitempty"`
	// PrefetchTimeout bounds one whole prefetch round trip, all retry
	// attempts included (default 20s), so a stalled origin cannot pin a
	// prefetch worker indefinitely.
	PrefetchTimeout Duration `json:"prefetch_timeout,omitempty"`
}

// Filled returns a copy with defaults applied to zero fields.
func (r Resilience) Filled() Resilience {
	if r.RetryAttempts <= 0 {
		r.RetryAttempts = 2
	}
	if r.RetryBaseDelay <= 0 {
		r.RetryBaseDelay = Duration(50 * time.Millisecond)
	}
	if r.RetryMaxDelay <= 0 {
		r.RetryMaxDelay = Duration(2 * time.Second)
	}
	if r.AttemptTimeout <= 0 {
		r.AttemptTimeout = Duration(15 * time.Second)
	}
	if r.BreakerFailures <= 0 {
		r.BreakerFailures = 5
	}
	if r.BreakerOpenTimeout <= 0 {
		r.BreakerOpenTimeout = Duration(10 * time.Second)
	}
	if r.PrefetchFailureLimit <= 0 {
		r.PrefetchFailureLimit = 3
	}
	if r.PrefetchBackoffBase <= 0 {
		r.PrefetchBackoffBase = Duration(time.Second)
	}
	if r.PrefetchBackoffMax <= 0 {
		r.PrefetchBackoffMax = Duration(5 * time.Minute)
	}
	if r.PrefetchTimeout <= 0 {
		r.PrefetchTimeout = Duration(20 * time.Second)
	}
	return r
}

// Overload tunes the proxy's self-protection: the client-request admission
// gate, the AIMD prefetch governor, and the prefetch queue's bounds. Zero
// values mean "use the default" so a config file may set only the fields it
// cares about; negative values disable the corresponding mechanism.
type Overload struct {
	// MaxConcurrentRequests bounds concurrently served client requests
	// (default 256); arrivals beyond it wait at most AdmissionWait before
	// being shed with a 503. <0 disables admission control.
	MaxConcurrentRequests int `json:"max_concurrent_requests,omitempty"`
	// AdmissionWait bounds how long an arriving request may wait for an
	// admission slot (default 100ms).
	AdmissionWait Duration `json:"admission_wait,omitempty"`
	// TargetP95 is the client-latency ceiling that signals overload to the
	// governor. 0 (the default) disables the latency signal — queue
	// pressure and admission sheds still drive the governor — so the §6
	// replications, whose absolute latencies depend on the emulation
	// scale, are not perturbed.
	TargetP95 Duration `json:"target_p95,omitempty"`
	// GovernorInterval is the AIMD adjustment period (default 250ms): at
	// most one multiplicative decrease or additive increase per interval.
	GovernorInterval Duration `json:"governor_interval,omitempty"`
	// GovernorMinLevel floors the governor's prefetch level (default 0.05);
	// at the floor the proxy stops speculative prefetching entirely.
	GovernorMinLevel float64 `json:"governor_min_level,omitempty"`
	// GovernorIncrease is the additive step back toward full prefetching
	// after a healthy interval (default 0.1).
	GovernorIncrease float64 `json:"governor_increase,omitempty"`
	// GovernorDecrease is the multiplicative factor applied on an
	// overloaded interval (default 0.5).
	GovernorDecrease float64 `json:"governor_decrease,omitempty"`
	// QueueHighWater is the prefetch-queue fill fraction that signals
	// overload (default 0.75).
	QueueHighWater float64 `json:"queue_high_water,omitempty"`
	// QueueDeadline is how long a queued prefetch stays eligible to run
	// (default 10s); staler tasks are dropped at dispatch. <0 disables
	// enqueue deadlines.
	QueueDeadline Duration `json:"queue_deadline,omitempty"`
	// DeepDepth is the chain depth at which a prefetch counts as deep
	// class — the first work shed under pressure (default 1: everything
	// spawned by a prefetched response rather than live traffic).
	DeepDepth int `json:"deep_depth,omitempty"`
	// MaxQueue bounds the prefetch scheduler queue (default 4096).
	MaxQueue int `json:"max_queue,omitempty"`
}

// Filled returns a copy with defaults applied to zero fields.
func (o Overload) Filled() Overload {
	if o.MaxConcurrentRequests == 0 {
		o.MaxConcurrentRequests = 256
	}
	if o.AdmissionWait == 0 {
		o.AdmissionWait = Duration(100 * time.Millisecond)
	}
	if o.GovernorInterval <= 0 {
		o.GovernorInterval = Duration(250 * time.Millisecond)
	}
	if o.GovernorMinLevel <= 0 {
		o.GovernorMinLevel = 0.05
	}
	if o.GovernorIncrease <= 0 {
		o.GovernorIncrease = 0.1
	}
	if o.GovernorDecrease <= 0 || o.GovernorDecrease >= 1 {
		o.GovernorDecrease = 0.5
	}
	if o.QueueHighWater <= 0 || o.QueueHighWater > 1 {
		o.QueueHighWater = 0.75
	}
	if o.QueueDeadline == 0 {
		o.QueueDeadline = Duration(10 * time.Second)
	}
	if o.DeepDepth <= 0 {
		o.DeepDepth = 1
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4096
	}
	return o
}

// Cache tunes the proxy's sharded prefetch store (internal/cache). Zero
// values mean "use the default" so a config file may set only the fields it
// cares about.
type Cache struct {
	// MaxBytes is the global resident-byte budget (default 256 MiB);
	// least-recently-used entries are evicted beyond it. <0 = unlimited.
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// PerUserBytes caps one user's resident bytes (default MaxBytes/64, at
	// least 1 MiB). <0 disables the cap.
	PerUserBytes int64 `json:"per_user_bytes,omitempty"`
	// MaxEntriesPerUser caps one user's entry count (default 4096). <0
	// disables the cap.
	MaxEntriesPerUser int `json:"max_entries_per_user,omitempty"`
	// Shards is the store's lock-partition count (default 32).
	Shards int `json:"shards,omitempty"`
	// SweepInterval is the background expiry-sweep period (default 30s);
	// <0 disables the sweeper (expired entries then go only at lookup).
	SweepInterval Duration `json:"sweep_interval,omitempty"`
	// DisableSharedTier turns off cross-user response sharing; every entry
	// is then stored strictly per user, as in the paper's prototype.
	DisableSharedTier bool `json:"disable_shared_tier,omitempty"`
}

// Filled returns a copy with defaults applied to zero fields.
func (c Cache) Filled() Cache {
	if c.MaxBytes == 0 {
		c.MaxBytes = 256 << 20
	}
	if c.PerUserBytes == 0 {
		c.PerUserBytes = c.MaxBytes / 64
		if c.PerUserBytes < 1<<20 {
			c.PerUserBytes = 1 << 20
		}
	}
	if c.MaxEntriesPerUser == 0 {
		c.MaxEntriesPerUser = 4096
	}
	if c.Shards <= 0 {
		c.Shards = 32
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = Duration(30 * time.Second)
	}
	return c
}

// Config is the proxy's full configuration.
type Config struct {
	App      string    `json:"app"`
	Policies []*Policy `json:"policies"`

	// GlobalProbability scales every policy's probability (§6.3's knob);
	// 1 when unset.
	GlobalProbability float64 `json:"global_probability,omitempty"`
	// DataBudgetBytes caps prefetch response bytes per budget window;
	// 0 = unlimited (C4, the paper's cellular-data budget).
	DataBudgetBytes int64 `json:"data_budget_bytes,omitempty"`
	// DataBudgetWindow is the accounting period for DataBudgetBytes
	// (default 1h): usage resets each window, matching the per-period
	// intent of a data budget rather than a lifetime cap.
	DataBudgetWindow Duration `json:"data_budget_window,omitempty"`
	// DefaultExpiration applies to policies with zero expiration_time.
	DefaultExpiration Duration `json:"default_expiration,omitempty"`
	// UserProbability overrides the global probability for specific users —
	// the §4.4 service-differentiation hook ("deliver better service (i.e.
	// aggressive prefetching) to premium customers"). Keyed by the proxy's
	// user key.
	UserProbability map[string]float64 `json:"user_probability,omitempty"`
	// Resilience tunes origin-path fault handling; nil means all defaults.
	Resilience *Resilience `json:"resilience,omitempty"`
	// Cache tunes the sharded prefetch store; nil means all defaults.
	Cache *Cache `json:"cache,omitempty"`
	// Overload tunes admission control and the prefetch governor; nil
	// means all defaults.
	Overload *Overload `json:"overload,omitempty"`

	byHash map[string]*Policy
}

// EffectiveResilience resolves the resilience knobs with defaults applied.
func (c *Config) EffectiveResilience() Resilience {
	if c.Resilience != nil {
		return c.Resilience.Filled()
	}
	return Resilience{}.Filled()
}

// EffectiveCache resolves the cache knobs with defaults applied.
func (c *Config) EffectiveCache() Cache {
	if c.Cache != nil {
		return c.Cache.Filled()
	}
	return Cache{}.Filled()
}

// EffectiveOverload resolves the overload knobs with defaults applied.
func (c *Config) EffectiveOverload() Overload {
	if c.Overload != nil {
		return c.Overload.Filled()
	}
	return Overload{}.Filled()
}

// BudgetWindow resolves the data-budget accounting period (1h default).
func (c *Config) BudgetWindow() time.Duration {
	if c.DataBudgetWindow > 0 {
		return time.Duration(c.DataBudgetWindow)
	}
	return time.Hour
}

// UserScale returns the probability multiplier for a user (1 when no tier
// is configured).
func (c *Config) UserScale(user string) float64 {
	if c.UserProbability == nil {
		return 1
	}
	if v, ok := c.UserProbability[user]; ok {
		if v < 0 {
			return 0
		}
		return v
	}
	return 1
}

// Default derives the initial configuration from a signature graph: every
// prefetchable signature enabled with probability 1 and a conservative
// 5-minute expiry (the verification phase refines expiries from its logs).
func Default(g *sig.Graph) *Config {
	c := &Config{App: g.App, GlobalProbability: 1, DefaultExpiration: Duration(5 * time.Minute)}
	for _, id := range g.Prefetchable() {
		s := g.Sig(id)
		if s == nil {
			continue
		}
		c.Policies = append(c.Policies, &Policy{
			Hash:        s.Hash(),
			URI:         s.URI.String(),
			Prefetch:    true,
			Probability: 1,
		})
	}
	c.reindex()
	return c
}

func (c *Config) reindex() {
	c.byHash = make(map[string]*Policy, len(c.Policies))
	for _, p := range c.Policies {
		c.byHash[p.Hash] = p
	}
}

// Policy returns the policy for a signature hash, or nil.
func (c *Config) Policy(hash string) *Policy {
	if c.byHash == nil {
		c.reindex()
	}
	return c.byHash[hash]
}

// SetPolicy inserts or replaces a policy.
func (c *Config) SetPolicy(p *Policy) {
	if c.byHash == nil {
		c.reindex()
	}
	if old, ok := c.byHash[p.Hash]; ok {
		*old = *p
		return
	}
	c.Policies = append(c.Policies, p)
	c.byHash[p.Hash] = p
}

// Expiration resolves the effective expiry for a policy.
func (c *Config) Expiration(p *Policy) time.Duration {
	if p != nil && p.ExpirationTime > 0 {
		return time.Duration(p.ExpirationTime)
	}
	if c.DefaultExpiration > 0 {
		return time.Duration(c.DefaultExpiration)
	}
	return 5 * time.Minute
}

// EffectiveProbability combines a policy's probability with the global
// scaling knob.
func (c *Config) EffectiveProbability(p *Policy) float64 {
	gp := c.GlobalProbability
	if gp == 0 {
		gp = 1
	}
	pp := 1.0
	if p != nil {
		pp = p.Probability
		if pp == 0 && !p.Prefetch {
			pp = 0
		} else if pp == 0 {
			pp = 1
		}
	}
	v := gp * pp
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Marshal serializes the configuration.
func (c *Config) Marshal() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Unmarshal parses a configuration.
func Unmarshal(b []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	c.reindex()
	return &c, nil
}
