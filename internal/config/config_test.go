package config

import (
	"testing"
	"time"

	"appx/internal/jsonpath"
	"appx/internal/sig"
)

func testGraph() *sig.Graph {
	g := sig.NewGraph("app")
	g.Add(&sig.Signature{ID: "pred", Method: "GET", URI: sig.Literal("h/feed")})
	g.Add(&sig.Signature{ID: "succ", Method: "GET", URI: sig.Literal("h/item")})
	g.AddDep(sig.Dependency{PredID: "pred", SuccID: "succ", RespPath: "id",
		Loc: sig.FieldLoc{Where: "query", Key: "id"}})
	return g
}

func TestDefaultConfig(t *testing.T) {
	g := testGraph()
	c := Default(g)
	if len(c.Policies) != 1 {
		t.Fatalf("policies = %d, want 1 (only the successor)", len(c.Policies))
	}
	p := c.Policies[0]
	if !p.Prefetch || p.Probability != 1 {
		t.Fatalf("default policy = %+v", p)
	}
	if p.Hash != g.Sig("succ").Hash() {
		t.Fatal("policy hash mismatch")
	}
	if c.Policy(p.Hash) != p {
		t.Fatal("Policy lookup failed")
	}
}

func TestSetPolicyReplaceAndInsert(t *testing.T) {
	c := Default(testGraph())
	h := c.Policies[0].Hash
	c.SetPolicy(&Policy{Hash: h, Prefetch: false})
	if c.Policy(h).Prefetch {
		t.Fatal("SetPolicy did not replace")
	}
	c.SetPolicy(&Policy{Hash: "new", Prefetch: true})
	if len(c.Policies) != 2 || c.Policy("new") == nil {
		t.Fatal("SetPolicy did not insert")
	}
}

func TestExpirationFallbacks(t *testing.T) {
	c := &Config{DefaultExpiration: Duration(2 * time.Minute)}
	if got := c.Expiration(nil); got != 2*time.Minute {
		t.Fatalf("Expiration(nil) = %v", got)
	}
	p := &Policy{ExpirationTime: Duration(time.Hour)}
	if got := c.Expiration(p); got != time.Hour {
		t.Fatalf("Expiration(policy) = %v", got)
	}
	empty := &Config{}
	if got := empty.Expiration(nil); got != 5*time.Minute {
		t.Fatalf("Expiration fallback = %v", got)
	}
}

func TestEffectiveProbability(t *testing.T) {
	c := &Config{GlobalProbability: 0.5}
	if got := c.EffectiveProbability(&Policy{Prefetch: true, Probability: 0.8}); got != 0.4 {
		t.Fatalf("0.5*0.8 = %v", got)
	}
	if got := c.EffectiveProbability(nil); got != 0.5 {
		t.Fatalf("nil policy = %v", got)
	}
	if got := (&Config{}).EffectiveProbability(&Policy{Prefetch: true}); got != 1 {
		t.Fatalf("defaults = %v", got)
	}
	if got := (&Config{GlobalProbability: -3}).EffectiveProbability(nil); got != 0 {
		t.Fatalf("clamp low = %v", got)
	}
}

func TestConditionEval(t *testing.T) {
	doc, _ := jsonpath.Decode([]byte(`{"data":{"price":1500,"name":"silk road","tags":[{"v":"a"},{"v":"b"}]}}`))
	cases := []struct {
		c    Condition
		want bool
	}{
		{Condition{Field: "data.price", Op: "gt", Value: "1000"}, true},
		{Condition{Field: "data.price", Op: "gt", Value: "2000"}, false},
		{Condition{Field: "data.price", Op: "lt", Value: "2000"}, true},
		{Condition{Field: "data.price", Op: "ge", Value: "1500"}, true},
		{Condition{Field: "data.price", Op: "le", Value: "1499"}, false},
		{Condition{Field: "data.price", Op: "eq", Value: "1500"}, true},
		{Condition{Field: "data.price", Op: "ne", Value: "1500"}, false},
		{Condition{Field: "data.name", Op: "contains", Value: "road"}, true},
		{Condition{Field: "data.name", Op: "contains", Value: "xyz"}, false},
		{Condition{Field: "data.missing", Op: "eq", Value: "1"}, false},
		{Condition{Field: "data.tags[*].v", Op: "eq", Value: "b"}, true},
		{Condition{Field: "data.price", Op: "bogus", Value: "1"}, false},
		{Condition{Field: "][", Op: "eq", Value: "1"}, false},
	}
	for i, tc := range cases {
		if got := tc.c.Eval(doc); got != tc.want {
			t.Errorf("case %d (%+v) = %v, want %v", i, tc.c, got, tc.want)
		}
	}
	var nilCond *Condition
	if !nilCond.Eval(doc) {
		t.Error("nil condition should pass")
	}
}

func TestConditionStringComparison(t *testing.T) {
	doc, _ := jsonpath.Decode([]byte(`{"tier":"premium"}`))
	c := Condition{Field: "tier", Op: "eq", Value: "premium"}
	if !c.Eval(doc) {
		t.Fatal("string eq failed")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := Default(testGraph())
	c.Policies[0].ExpirationTime = Duration(90 * time.Second)
	c.Policies[0].AddHeader = []Header{{Key: "X-Proxy", Value: "prefetch"}}
	c.Policies[0].Condition = &Condition{Field: "price", Op: "gt", Value: "1000"}
	c.DataBudgetBytes = 1 << 20
	b, err := c.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	c2, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	p := c2.Policies[0]
	if time.Duration(p.ExpirationTime) != 90*time.Second {
		t.Fatalf("expiration = %v", p.ExpirationTime)
	}
	if p.Condition == nil || p.Condition.Op != "gt" {
		t.Fatalf("condition lost: %+v", p.Condition)
	}
	if c2.DataBudgetBytes != 1<<20 {
		t.Fatal("budget lost")
	}
	if c2.Policy(p.Hash) == nil {
		t.Fatal("index lost")
	}
}

func TestDurationJSONForms(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"1h30m"`)); err != nil || time.Duration(d) != 90*time.Minute {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`5000000000`)); err != nil || time.Duration(d) != 5*time.Second {
		t.Fatalf("numeric form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Fatal("bad duration accepted")
	}
	if err := d.UnmarshalJSON([]byte(`{}`)); err == nil {
		t.Fatal("object accepted")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestOverloadDefaults(t *testing.T) {
	c := Default(testGraph())
	o := c.EffectiveOverload()
	if o.MaxConcurrentRequests != 256 {
		t.Fatalf("MaxConcurrentRequests = %d", o.MaxConcurrentRequests)
	}
	if time.Duration(o.AdmissionWait) != 100*time.Millisecond {
		t.Fatalf("AdmissionWait = %v", o.AdmissionWait)
	}
	if time.Duration(o.TargetP95) != 0 {
		t.Fatalf("TargetP95 = %v, want disabled by default", o.TargetP95)
	}
	if o.GovernorMinLevel != 0.05 || o.GovernorIncrease != 0.1 || o.GovernorDecrease != 0.5 {
		t.Fatalf("governor defaults = %+v", o)
	}
	if o.QueueHighWater != 0.75 || o.DeepDepth != 1 || o.MaxQueue != 4096 {
		t.Fatalf("queue defaults = %+v", o)
	}
	if time.Duration(o.QueueDeadline) != 10*time.Second {
		t.Fatalf("QueueDeadline = %v", o.QueueDeadline)
	}
}

func TestOverloadPartialFillAndNegatives(t *testing.T) {
	c := Default(testGraph())
	c.Overload = &Overload{MaxConcurrentRequests: -1, QueueDeadline: Duration(-1), MaxQueue: 64}
	o := c.EffectiveOverload()
	if o.MaxConcurrentRequests != -1 {
		t.Fatalf("negative MaxConcurrentRequests not preserved: %d", o.MaxConcurrentRequests)
	}
	if o.QueueDeadline >= 0 {
		t.Fatalf("negative QueueDeadline not preserved: %v", o.QueueDeadline)
	}
	if o.MaxQueue != 64 {
		t.Fatalf("MaxQueue = %d", o.MaxQueue)
	}
	// Untouched fields still default.
	if o.GovernorDecrease != 0.5 {
		t.Fatalf("GovernorDecrease = %v", o.GovernorDecrease)
	}
}

func TestOverloadRoundTrip(t *testing.T) {
	c := Default(testGraph())
	c.Overload = &Overload{MaxConcurrentRequests: 32, TargetP95: Duration(800 * time.Millisecond)}
	b, err := c.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	c2, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if c2.Overload == nil || c2.Overload.MaxConcurrentRequests != 32 {
		t.Fatalf("overload lost: %+v", c2.Overload)
	}
	if time.Duration(c2.EffectiveOverload().TargetP95) != 800*time.Millisecond {
		t.Fatalf("TargetP95 = %v", c2.EffectiveOverload().TargetP95)
	}
}
