// Package cluster implements the proxy's scale-out layer: N appx-proxy
// instances form a fleet in which each user's learned state (cache scope,
// exemplars, budget) is pinned to exactly one owner instance by a
// consistent-hash ring, and user-agnostic cache entries are shared
// fleet-wide by a peer-fill protocol that asks ring siblings before paying
// an origin round trip.
//
// The package has three parts: the hash ring (this file) — a pure function
// from (key, membership) to an owner, so every instance that agrees on who
// is alive agrees on who owns what; membership (membership.go) — a static
// seed list health-probed over the admin API, with per-peer circuit
// breakers deciding aliveness; and the peer protocol clients (peer.go) —
// pooled HTTP clients for forwarding a request to its owner and for peeking
// a sibling's shared cache tier.
package cluster

import "sort"

// DefaultVNodes is the virtual-node count per member. At 128 vnodes the
// ring's key distribution is bounded by construction: the busiest member
// owns at most ~1.25x the mean share (pinned by TestRingDistributionSkew).
// This is how the ring bounds load while staying a pure function of
// membership — a dynamic bounded-load walk (skip members past c·mean
// current load) was rejected because instances would consult divergent
// local load views and route the same user differently, and ownership that
// flaps is worse than ownership 25% above mean.
const DefaultVNodes = 128

// point is one virtual node: a position on the hash circle and the member
// that owns the arc ending there.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. It is a value-style
// structure with no internal locking; Cluster guards it and rebuilds it on
// membership changes. The zero value is not usable; call NewRing.
type Ring struct {
	vnodes  int
	points  []point // sorted by (hash, node)
	members map[string]struct{}
}

// NewRing builds an empty ring with the given virtual-node count per member
// (<=0 takes DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: map[string]struct{}{}}
}

// hash64 is FNV-1a finished with the murmur3 avalanche mix. Plain FNV
// clusters badly on short, similar strings (vnode labels differ in a digit
// or two); the finalizer spreads those deltas across all 64 bits, which the
// skew bound depends on.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// vnodeLabel names one virtual node; the '#' separator cannot appear in a
// host:port member name's port half, keeping labels collision-free.
func vnodeLabel(node string, i int) string {
	// Hand-rolled itoa keeps Add allocation-light for large vnode counts.
	buf := make([]byte, 0, len(node)+6)
	buf = append(buf, node...)
	buf = append(buf, '#')
	if i == 0 {
		buf = append(buf, '0')
	} else {
		var digits [5]byte
		n := 0
		for v := i; v > 0; v /= 10 {
			digits[n] = byte('0' + v%10)
			n++
		}
		for j := n - 1; j >= 0; j-- {
			buf = append(buf, digits[j])
		}
	}
	return string(buf)
}

// Add inserts a member and its virtual nodes. Adding an existing member is
// a no-op. Consistent hashing's minimal-movement property holds by
// construction: only keys on arcs immediately counter-clockwise of the new
// member's vnodes change owner, and they all move *to* the new member.
func (r *Ring) Add(node string) {
	if _, ok := r.members[node]; ok {
		return
	}
	r.members[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hash64(vnodeLabel(node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties break on the member name so every instance sorts
		// identically — ownership must be deterministic fleet-wide.
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a member and its virtual nodes. Removing an absent member
// is a no-op. Only keys the member owned change owner — each arc falls to
// its clockwise successor.
func (r *Ring) Remove(node string) {
	if _, ok := r.members[node]; !ok {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	_, ok := r.members[node]
	return ok
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the members in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// search returns the index of the first point clockwise of key's hash
// (wrapping to 0 past the end).
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Successors returns up to n distinct members clockwise from key's
// position, starting with the owner. The peer-fill protocol probes these:
// every instance walks the same order for the same key, so sibling probes
// concentrate on the members most likely to hold (or to be filling) the
// entry.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
