package cluster

import (
	"fmt"
	"testing"
)

// TestRingDistributionSkew pins the bound the ownership design relies on: at
// the default 128 vnodes, no member of a 3-node ring owns more than 1.25x
// the mean key share. DESIGN.md §10 cites this in place of a dynamic
// bounded-load walk.
func TestRingDistributionSkew(t *testing.T) {
	const keys = 60000
	nodes := []string{"127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"}
	r := NewRing(DefaultVNodes)
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("user-%d", i))]++
	}
	mean := float64(keys) / float64(len(nodes))
	for _, n := range nodes {
		skew := float64(counts[n]) / mean
		if skew > 1.25 {
			t.Errorf("node %s owns %d keys = %.3fx mean, want <= 1.25x", n, counts[n], skew)
		}
		if counts[n] == 0 {
			t.Errorf("node %s owns no keys", n)
		}
	}
}

// TestRingMinimalMovementJoin verifies the consistent-hashing contract on
// join: every key whose owner changes moves *to* the new member, never
// between survivors.
func TestRingMinimalMovementJoin(t *testing.T) {
	const keys = 20000
	r := NewRing(DefaultVNodes)
	r.Add("a:1")
	r.Add("b:1")
	r.Add("c:1")
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("user-%d", i))
	}
	r.Add("d:1")
	moved := 0
	for i := range before {
		after := r.Owner(fmt.Sprintf("user-%d", i))
		if after == before[i] {
			continue
		}
		moved++
		if after != "d:1" {
			t.Fatalf("key user-%d moved %s -> %s, not to the joining node", i, before[i], after)
		}
	}
	// ~1/4 of keys should land on the new member; far more means the ring
	// reshuffled survivors, far fewer means the new member is underweighted.
	if lo, hi := keys/8, keys/2; moved < lo || moved > hi {
		t.Errorf("join moved %d/%d keys, want within [%d, %d]", moved, keys, lo, hi)
	}
}

// TestRingMinimalMovementLeave verifies the contract on leave: only keys the
// departed member owned change owner.
func TestRingMinimalMovementLeave(t *testing.T) {
	const keys = 20000
	r := NewRing(DefaultVNodes)
	for _, n := range []string{"a:1", "b:1", "c:1"} {
		r.Add(n)
	}
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("user-%d", i))
	}
	r.Remove("b:1")
	for i := range before {
		after := r.Owner(fmt.Sprintf("user-%d", i))
		if before[i] != "b:1" && after != before[i] {
			t.Fatalf("key user-%d owned by survivor %s moved to %s on unrelated leave", i, before[i], after)
		}
		if after == "b:1" {
			t.Fatalf("key user-%d still owned by removed node", i)
		}
	}
}

// TestRingDeterminism: two independently built rings with the same
// membership agree on every owner regardless of insertion order — the
// property the whole fleet-wide routing scheme rests on.
func TestRingDeterminism(t *testing.T) {
	r1 := NewRing(64)
	r2 := NewRing(64)
	for _, n := range []string{"a:1", "b:1", "c:1"} {
		r1.Add(n)
	}
	for _, n := range []string{"c:1", "a:1", "b:1"} {
		r2.Add(n)
	}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("user-%d", i)
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k, r1.Owner(k), r2.Owner(k))
		}
	}
}

// TestRingSuccessors checks the sibling-walk order: distinct members, owner
// first, capped at the member count.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(DefaultVNodes)
	for _, n := range []string{"a:1", "b:1", "c:1"} {
		r.Add(n)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("user-%d", i)
		succ := r.Successors(k, 5)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 5) = %v, want all 3 distinct members", k, succ)
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("Successors(%q)[0] = %s, want owner %s", k, succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors(%q) repeats %s", k, s)
			}
			seen[s] = true
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate shapes the proxy hits while
// probes are still deciding peers are dead.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(8)
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	if got := r.Successors("k", 3); got != nil {
		t.Fatalf("empty ring Successors = %v, want nil", got)
	}
	r.Add("only:1")
	if got := r.Owner("k"); got != "only:1" {
		t.Fatalf("single ring Owner = %q", got)
	}
	r.Add("only:1") // duplicate add is a no-op
	if n := len(r.points); n != 8 {
		t.Fatalf("duplicate Add grew points to %d, want 8", n)
	}
	r.Remove("absent:1") // absent remove is a no-op
	if r.Len() != 1 {
		t.Fatalf("Len = %d after no-op remove, want 1", r.Len())
	}
}
