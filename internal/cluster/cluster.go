package cluster

import (
	"context"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"appx/internal/obs/adminv1"
	"appx/internal/proxy/resilience"
)

// Config declares an instance's place in the fleet. The zero value means
// "not clustered" (Enabled() == false) and the proxy runs exactly as before.
type Config struct {
	// Self is this instance's advertised host:port — the address peers dial
	// and the ring member name. Clustering is on iff Self is non-empty.
	Self string
	// Peers is the static seed list (host:port each). Self may appear in it
	// (convenient for passing one identical flag to every instance); it is
	// ignored. Membership beyond this list is not discovered — dead peers
	// are probed forever and rejoin when they answer again.
	Peers []string
	// VNodes is the virtual-node count per ring member (default
	// DefaultVNodes = 128).
	VNodes int
	// Replicas is how many ring siblings (beyond the owner) a peer fill
	// consults (default 2).
	Replicas int
	// ProbeInterval is the health-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 500ms).
	ProbeTimeout time.Duration
	// FailureThreshold is the consecutive probe failures that mark a peer
	// dead (default 3).
	FailureThreshold int
	// Now supplies time for breaker state; defaults to time.Now. Membership
	// deliberately does NOT inherit the proxy's injectable clock: several
	// experiments freeze it, and a frozen clock would keep open breakers
	// from ever half-opening, making peer rejoin undetectable.
	Now func() time.Time
	// Dial, when non-nil, replaces the default dialer on every cluster
	// client (probes, forwards, peeks). The chaos harness injects
	// netem-faulted dials here; production leaves it nil.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
}

// Enabled reports whether this config turns clustering on.
func (c Config) Enabled() bool { return c.Self != "" }

func (c *Config) fill() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Cluster tracks fleet membership and answers ownership queries. One lives
// inside each clustered proxy. Probing starts on Start and stops on Close.
type Cluster struct {
	cfg   Config
	peers []string // deduped, Self removed

	// breakers holds one circuit breaker per peer, keyed by host:port.
	// Closed = alive. Allow() doubles as probe pacing: an open breaker
	// rejects probes until OpenTimeout (2x ProbeInterval) elapses, then
	// admits one half-open probe — so a dead peer is probed at half rate
	// and a single success revives it.
	breakers *resilience.Breakers

	probeClient *http.Client // pooled; also serves sibling peeks

	mu       sync.Mutex
	ring     *Ring
	alive    map[string]bool
	onChange func()

	clientMu sync.Mutex
	clients  map[string]*http.Client // per-peer forwarding clients

	// ctx is the cluster's root context; Close cancels it, aborting
	// in-flight probes, forwards, and peer fills instead of letting them
	// wait out their timeouts during a drain.
	ctx    context.Context
	cancel context.CancelFunc

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	probeFailures atomic.Int64
	rebuilds      atomic.Int64
	drainErrors   atomic.Int64
}

// DrainErrors reports how many response-body drains failed mid-read — the
// once-silent error path in drain, now surfaced for the registry.
func (c *Cluster) DrainErrors() int64 { return c.drainErrors.Load() }

// New builds a Cluster from cfg. The ring starts optimistic — every
// configured peer is presumed alive until probes say otherwise — so a fleet
// booting in any order converges without a thundering herd of forwards to
// not-yet-up peers failing foreground requests (forward errors fall back to
// local serving anyway).
func New(cfg Config) *Cluster {
	cfg.fill()
	c := &Cluster{
		cfg:     cfg,
		alive:   map[string]bool{},
		clients: map[string]*http.Client{},
		stop:    make(chan struct{}),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	seen := map[string]struct{}{cfg.Self: {}}
	for _, p := range cfg.Peers {
		if _, dup := seen[p]; dup || p == "" {
			continue
		}
		seen[p] = struct{}{}
		c.peers = append(c.peers, p)
		c.alive[p] = true
	}
	c.breakers = resilience.NewBreakers(resilience.BreakerOptions{
		FailureThreshold: cfg.FailureThreshold,
		OpenTimeout:      2 * cfg.ProbeInterval,
		Now:              cfg.Now,
	})
	// Probes reuse one pooled client: keep-alive connections to every peer,
	// never http.DefaultClient (unbounded, shared, no timeout).
	probeTransport := &http.Transport{
		MaxIdleConns:          64,
		MaxIdleConnsPerHost:   4,
		IdleConnTimeout:       30 * time.Second,
		TLSHandshakeTimeout:   2 * time.Second,
		ExpectContinueTimeout: time.Second,
		DisableCompression:    true,
	}
	if cfg.Dial != nil {
		probeTransport.DialContext = cfg.Dial
	}
	c.probeClient = &http.Client{
		Timeout:   cfg.ProbeTimeout,
		Transport: probeTransport,
	}
	c.rebuildRing()
	return c
}

// Start launches the background probe loop. Safe to skip in tests that
// drive ProbeOnce directly.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.ProbeOnce()
			}
		}
	}()
}

// Close stops probing, cancels in-flight probes/forwards/fills, and
// releases pooled connections. Idempotent.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.cancel()
	c.wg.Wait()
	c.probeClient.CloseIdleConnections()
	c.clientMu.Lock()
	for _, cl := range c.clients {
		cl.CloseIdleConnections()
	}
	c.clientMu.Unlock()
}

// Self returns this instance's advertised address.
func (c *Cluster) Self() string { return c.cfg.Self }

// Peers returns the configured peer list (deduped, Self removed). The slice
// is fixed after New; callers must not mutate it.
func (c *Cluster) Peers() []string { return c.peers }

// Context returns the cluster's root context. It is canceled by Close, so
// background work parented here (prefetch-path peer fills, probes) dies with
// the cluster during a drain instead of waiting out its own timeout.
func (c *Cluster) Context() context.Context { return c.ctx }

// Replicas returns the peer-fill fan-out bound.
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// OnChange registers fn to run (on the probe goroutine) after every
// membership change that rebuilt the ring. The proxy hooks its incremental
// rebalance here.
func (c *Cluster) OnChange(fn func()) {
	c.mu.Lock()
	c.onChange = fn
	c.mu.Unlock()
}

// ProbeOnce health-probes every peer concurrently and rebuilds the ring if
// any aliveness flipped. Exported so tests and the experiment can force a
// membership round without waiting out the ticker.
func (c *Cluster) ProbeOnce() {
	var wg sync.WaitGroup
	for _, p := range c.peers {
		// Allow gates probe pacing: open breaker → skip this round.
		if !c.breakers.Allow(p) {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			if c.probe(peer) {
				c.breakers.ReportSuccess(peer)
			} else {
				c.breakers.ReportFailure(peer)
				c.probeFailures.Add(1)
			}
		}(p)
	}
	wg.Wait()

	changed := false
	c.mu.Lock()
	for _, p := range c.peers {
		up := c.breakers.State(p) == resilience.Closed
		if c.alive[p] != up {
			c.alive[p] = up
			changed = true
		}
	}
	var fire func()
	if changed {
		c.rebuildRingLocked()
		fire = c.onChange
	}
	c.mu.Unlock()
	if fire != nil {
		fire()
	}
}

func (c *Cluster) probe(peer string) bool {
	// Parent on the cluster context so Close aborts in-flight probes
	// immediately; a drain no longer waits out ProbeTimeout.
	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+adminv1.PathHealth, nil)
	if err != nil {
		return false
	}
	resp, err := c.probeClient.Do(req)
	if err != nil {
		return false
	}
	// Drain so the keep-alive connection is reusable.
	c.drain(resp)
	// A draining instance answers health with 503: it is alive but leaving;
	// treat as down so new work stops routing there.
	return resp.StatusCode == http.StatusOK
}

func (c *Cluster) rebuildRing() {
	c.mu.Lock()
	c.rebuildRingLocked()
	c.mu.Unlock()
}

func (c *Cluster) rebuildRingLocked() {
	r := NewRing(c.cfg.VNodes)
	r.Add(c.cfg.Self)
	for _, p := range c.peers {
		if c.alive[p] {
			r.Add(p)
		}
	}
	c.ring = r
	c.rebuilds.Add(1)
}

// Owner returns the instance owning userKey and whether that is this
// instance. An empty userKey (anonymous request) is always self-owned:
// there is no per-user state to pin.
func (c *Cluster) Owner(userKey string) (addr string, self bool) {
	if userKey == "" {
		return c.cfg.Self, true
	}
	c.mu.Lock()
	addr = c.ring.Owner(userKey)
	c.mu.Unlock()
	return addr, addr == c.cfg.Self
}

// Owns reports whether this instance owns userKey under the current ring.
func (c *Cluster) Owns(userKey string) bool {
	_, self := c.Owner(userKey)
	return self
}

// FillPeers returns the alive siblings to peek for flightKey, owner-first,
// capped at Replicas. Every instance computes the same order for the same
// key, so concurrent missing instances converge on the same first target.
func (c *Cluster) FillPeers(flightKey string) []string {
	c.mu.Lock()
	succ := c.ring.Successors(flightKey, c.cfg.Replicas+1)
	c.mu.Unlock()
	out := make([]string, 0, c.cfg.Replicas)
	for _, s := range succ {
		if s == c.cfg.Self || len(out) == c.cfg.Replicas {
			continue
		}
		out = append(out, s)
	}
	return out
}

// PeerReady reports whether addr's breaker currently admits traffic,
// without consuming the half-open probe slot (that belongs to the health
// prober).
func (c *Cluster) PeerReady(addr string) bool {
	return c.breakers.Ready(addr)
}

// ReportForward feeds a forwarding result into addr's breaker so a peer
// that probes healthy but fails real traffic still trips.
func (c *Cluster) ReportForward(addr string, ok bool) {
	if ok {
		c.breakers.ReportSuccess(addr)
	} else {
		c.breakers.ReportFailure(addr)
	}
}

// Members returns the current ring membership, sorted.
func (c *Cluster) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Members()
}

// Stats fills the membership half of the adminv1 cluster block; the proxy
// adds its forwarding/fill counters on top.
func (c *Cluster) Stats() adminv1.Cluster {
	out := adminv1.Cluster{
		Enabled:       true,
		Self:          c.cfg.Self,
		VNodes:        c.cfg.VNodes,
		ProbeFailures: c.probeFailures.Load(),
		RingRebuilds:  c.rebuilds.Load(),
	}
	c.mu.Lock()
	out.Members = c.ring.Members()
	peers := make(map[string]adminv1.ClusterPeer, len(c.peers))
	for _, p := range c.peers {
		peers[p] = adminv1.ClusterPeer{Alive: c.alive[p]}
	}
	c.mu.Unlock()
	snaps := c.breakers.Snapshot()
	for p, v := range peers {
		snap := snaps[p]
		v.Breaker = snap.State.String()
		v.ConsecutiveFailures = snap.ConsecutiveFailures
		peers[p] = v
	}
	out.Peers = peers
	return out
}
