package cluster

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"appx/internal/obs/adminv1"
)

// probeTarget is a fake peer: an httptest server answering /appx/v1/health,
// switchable between healthy and failing.
type probeTarget struct {
	srv  *httptest.Server
	fail atomic.Bool
}

func newProbeTarget(t *testing.T) *probeTarget {
	t.Helper()
	pt := &probeTarget{}
	pt.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != adminv1.PathHealth {
			http.NotFound(w, r)
			return
		}
		if pt.fail.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(pt.srv.Close)
	return pt
}

func (pt *probeTarget) addr() string { return strings.TrimPrefix(pt.srv.URL, "http://") }

// TestMembershipProbeTransitions drives the full lifecycle: optimistic
// start, failure detection after FailureThreshold consecutive misses, and
// rejoin after the breaker's open timeout admits a successful probe.
func TestMembershipProbeTransitions(t *testing.T) {
	peer := newProbeTarget(t)

	// A virtual clock stepped manually keeps the breaker's open-timeout
	// transitions deterministic.
	now := time.Unix(1_700_000_000, 0)
	cfg := Config{
		Self:             "127.0.0.1:1", // never dialed; only a ring name
		Peers:            []string{peer.addr()},
		VNodes:           32,
		ProbeInterval:    10 * time.Millisecond,
		ProbeTimeout:     time.Second,
		FailureThreshold: 3,
		Now:              func() time.Time { return now },
	}
	c := New(cfg)
	defer c.Close()

	changes := atomic.Int64{}
	c.OnChange(func() { changes.Add(1) })

	if got := len(c.Members()); got != 2 {
		t.Fatalf("optimistic ring has %d members, want 2", got)
	}

	// Healthy probes keep membership stable.
	c.ProbeOnce()
	if got := len(c.Members()); got != 2 {
		t.Fatalf("after healthy probe: %d members, want 2", got)
	}
	if changes.Load() != 0 {
		t.Fatalf("healthy probe fired OnChange")
	}

	// Three consecutive failures trip the breaker and shrink the ring.
	peer.fail.Store(true)
	for i := 0; i < 3; i++ {
		c.ProbeOnce()
		now = now.Add(time.Millisecond)
	}
	if got := len(c.Members()); got != 1 {
		t.Fatalf("after %d failed probes: %d members, want 1", 3, got)
	}
	if changes.Load() != 1 {
		t.Fatalf("death fired OnChange %d times, want 1", changes.Load())
	}
	st := c.Stats()
	if p := st.Peers[peer.addr()]; p.Alive || p.Breaker == "closed" {
		t.Fatalf("stats still report peer healthy: %+v", p)
	}

	// While the breaker is open, probes are skipped (paced) — no flapping.
	c.ProbeOnce()
	if got := len(c.Members()); got != 1 {
		t.Fatalf("open-breaker probe changed membership: %d members", got)
	}

	// Past the open timeout (2x probe interval) one half-open probe goes
	// through; a success closes the breaker and the peer rejoins.
	peer.fail.Store(false)
	now = now.Add(3 * cfg.ProbeInterval)
	c.ProbeOnce()
	if got := len(c.Members()); got != 2 {
		t.Fatalf("after recovery probe: %d members, want 2", got)
	}
	if changes.Load() != 2 {
		t.Fatalf("rejoin fired OnChange %d times total, want 2", changes.Load())
	}
}

// TestClusterOwnerAnonymous: requests with no user key stay local — there
// is no per-user state to pin anywhere.
func TestClusterOwnerAnonymous(t *testing.T) {
	c := New(Config{Self: "a:1", Peers: []string{"b:1"}, VNodes: 16})
	defer c.Close()
	if addr, self := c.Owner(""); !self || addr != "a:1" {
		t.Fatalf("anonymous Owner = (%s, %v), want self", addr, self)
	}
}

// TestFillPeersExcludesSelf: the sibling walk never peeks the asking
// instance and respects the replica bound.
func TestFillPeersExcludesSelf(t *testing.T) {
	c := New(Config{Self: "a:1", Peers: []string{"b:1", "c:1", "d:1"}, VNodes: 32, Replicas: 2})
	defer c.Close()
	for _, k := range []string{"k1", "k2", "k3", "k4", "k5"} {
		peers := c.FillPeers(k)
		if len(peers) > 2 {
			t.Fatalf("FillPeers(%q) returned %d peers, replica bound is 2", k, len(peers))
		}
		for _, p := range peers {
			if p == "a:1" {
				t.Fatalf("FillPeers(%q) includes self", k)
			}
		}
	}
}

// TestCloseCancelsInflightProbe: Close aborts a probe stuck on a hung peer
// instead of waiting out ProbeTimeout — the drain path must not block on
// dead network I/O.
func TestCloseCancelsInflightProbe(t *testing.T) {
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold the probe open until the test ends
	}))
	// Unblock the handler before Server.Close waits on it (defers run LIFO).
	defer hung.Close()
	defer close(release)

	c := New(Config{
		Self:         "127.0.0.1:0",
		Peers:        []string{strings.TrimPrefix(hung.URL, "http://")},
		ProbeTimeout: 30 * time.Second, // cancellation, not timeout, must end the probe
	})
	probeDone := make(chan struct{})
	go func() {
		c.ProbeOnce()
		close(probeDone)
	}()
	time.Sleep(50 * time.Millisecond) // let the probe reach the hung handler

	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	for _, ch := range []chan struct{}{closed, probeDone} {
		select {
		case <-ch:
		case <-time.After(2 * time.Second):
			t.Fatal("Close did not cancel the in-flight probe")
		}
	}
	select {
	case <-c.Context().Done():
	default:
		t.Fatal("cluster context not canceled after Close")
	}
}

// TestClusterDialHook: a Config.Dial hook sees every probe dial, letting
// fault injectors sit under the cluster's own clients.
func TestClusterDialHook(t *testing.T) {
	pt := newProbeTarget(t)
	var dials atomic.Int64
	c := New(Config{
		Self:  "127.0.0.1:0",
		Peers: []string{pt.addr()},
		Dial: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	})
	defer c.Close()
	c.ProbeOnce()
	if dials.Load() == 0 {
		t.Fatal("probe did not route through Config.Dial")
	}
}
