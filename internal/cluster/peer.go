package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"appx/internal/httpmsg"
	"appx/internal/obs/adminv1"
)

// forwardResponseHeaderTimeout bounds how long a relay waits for the owner
// to start answering; the owner runs the full origin path on a miss, so
// this must comfortably exceed an origin round trip.
const forwardResponseHeaderTimeout = 5 * time.Second

// peekBodyLimit bounds a sibling's entry response; anything larger than the
// cache would plausibly hold is a protocol error, not a fill.
const peekBodyLimit = 32 << 20

// client returns (building on first use) the pooled forwarding client for
// peer. Each peer is itself a forward proxy, so the client routes every
// request through it via Transport.Proxy — the request URL stays the
// origin-form URL the owner expects to key and match on.
func (c *Cluster) client(peer string) *http.Client {
	c.clientMu.Lock()
	defer c.clientMu.Unlock()
	if cl, ok := c.clients[peer]; ok {
		return cl
	}
	proxyURL := &url.URL{Scheme: "http", Host: peer}
	tr := &http.Transport{
		Proxy:                 http.ProxyURL(proxyURL),
		MaxIdleConns:          32,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       30 * time.Second,
		TLSHandshakeTimeout:   2 * time.Second,
		ExpectContinueTimeout: time.Second,
		ResponseHeaderTimeout: forwardResponseHeaderTimeout,
		DisableCompression:    true,
	}
	if c.cfg.Dial != nil {
		tr.DialContext = c.cfg.Dial
	}
	cl := &http.Client{
		// No overall Timeout: the context on each request bounds it; a
		// client-level timeout would also cap large-body reads.
		Transport: tr,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse // relay redirects verbatim
		},
	}
	c.clients[peer] = cl
	return cl
}

// Forward relays r to the owner instance at addr and returns its response.
// The caller has already stamped the hop and user headers. Network-level
// failure returns an error; any HTTP response — including the owner's own
// 5xx — returns nil error and is the caller's policy decision.
func (c *Cluster) Forward(ctx context.Context, addr string, r *httpmsg.Request) (*httpmsg.Response, error) {
	hr, err := r.ToHTTP()
	if err != nil {
		return nil, err
	}
	hr = hr.WithContext(ctx)
	// The relay must be byte-transparent: if the client sent no User-Agent,
	// the transport's injected default would reach the owner, taint its
	// exact-match keys and learned exemplars, and split the cluster into
	// per-path key universes. An explicitly empty value suppresses it.
	if _, ok := hr.Header["User-Agent"]; !ok {
		hr.Header.Set("User-Agent", "")
	}
	resp, err := c.client(addr).Do(hr)
	if err != nil {
		return nil, err
	}
	// Streaming: the relay copies owner→client without re-buffering the
	// body. The caller must finish it (WriteTo or DrainAndClose) on every
	// path, including fallbacks, or the pooled peer connection leaks.
	return httpmsg.FromHTTPResponseStreaming(resp), nil
}

// PeekEntry asks the sibling at addr whether its shared tier holds the
// canonical key. Returns (entry, true, nil) on a hit, (nil, false, nil) on
// a clean miss, and an error for anything else (the caller feeds errors
// into the peer's breaker via ReportForward).
func (c *Cluster) PeekEntry(ctx context.Context, addr, key string) (*adminv1.ClusterEntry, bool, error) {
	u := &url.URL{Scheme: "http", Host: addr, Path: adminv1.PathClusterEntry,
		RawQuery: url.Values{"key": {key}}.Encode()}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.probeClient.Do(req)
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var entry adminv1.ClusterEntry
		err := json.NewDecoder(io.LimitReader(resp.Body, peekBodyLimit)).Decode(&entry)
		c.drain(resp)
		if err != nil {
			return nil, false, fmt.Errorf("cluster: decoding peek from %s: %w", addr, err)
		}
		return &entry, true, nil
	case http.StatusNotFound:
		c.drain(resp)
		return nil, false, nil
	default:
		c.drain(resp)
		return nil, false, fmt.Errorf("cluster: peek %s: unexpected status %d", addr, resp.StatusCode)
	}
}

// drain discards the rest of a response body (bounded) and closes it so the
// pooled connection can be reused. Unlike the old silent io.Copy(io.Discard),
// errors are counted: a rising drainErrors series means a peer is tearing
// connections mid-body.
func (c *Cluster) drain(resp *http.Response) {
	if resp.Body == nil {
		return
	}
	if err := httpmsg.DrainAndClose(resp.Body); err != nil {
		c.drainErrors.Add(1)
	}
}
