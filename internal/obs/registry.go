// Package obs is the proxy's observability layer: a lock-cheap metrics
// registry (atomic counters, scrape-time gauge/counter callbacks, and
// fixed-bucket latency histograms with streaming quantiles) plus a
// per-request lifecycle span recorder (span.go).
//
// The paper's evaluation (Figures 15–16) attributes user-perceived latency
// to pipeline stages; this package is the substrate every such attribution
// reads from. Design constraints, in order:
//
//  1. Hot-path writes (Counter.Inc, Histogram.Observe, span recording) are
//     wait-free atomics — no sort, no map lookup, no allocation.
//  2. Reads (quantiles, Prometheus exposition, admin snapshots) may take
//     locks and allocate; they run on the admin surface, never per request.
//  3. One registry instance is the single exposition point: subsystems that
//     keep their own counters (scheduler, cache, breakers) are pulled in at
//     scrape time through CounterFunc/GaugeFunc callbacks.
//
// Metric names follow Prometheus conventions and may carry a literal label
// set: Counter(`appx_requests_total{outcome="shed"}`, ...) exposes a
// labeled series; families sharing a name before the brace share one
// HELP/TYPE block in the exposition.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// metricKind discriminates exposition formats.
type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// metric is one registered series.
type metric struct {
	name   string // full series name, possibly with {labels}
	family string // name up to the label brace
	labels string // label content without braces, "" when unlabeled
	help   string
	kind   metricKind

	counter   *Counter
	counterFn func() int64
	gaugeFn   func() float64
	hist      *Histogram
}

// Registry holds the registered series. Registration is done once at
// construction time; after that the registry is read-mostly (scrapes) while
// the instruments themselves absorb hot-path writes.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// splitName separates `family{labels}` into its parts.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.names[m.name] = true
	m.family, m.labels = splitName(m.name)
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for subsystems that keep their own monotone
// counters (scheduler class tallies, cache eviction causes).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, counterFn: fn})
}

// GaugeFunc registers a gauge series read from fn at scrape time (queue
// depths, resident bytes, governor level).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, gaugeFn: fn})
}

// Histogram registers and returns a fixed-bucket latency histogram. A nil
// bounds slice takes DefaultLatencyBuckets. Bounds must be ascending.
func (r *Registry) Histogram(name, help string, bounds []time.Duration) *Histogram {
	h := NewHistogram(bounds)
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// DefaultLatencyBuckets spans 500µs..30s exponentially — wide enough for a
// WAN-emulated origin fetch, fine enough near the bottom to resolve cache
// hits.
func DefaultLatencyBuckets() []time.Duration {
	return []time.Duration{
		500 * time.Microsecond,
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2500 * time.Millisecond, 5 * time.Second,
		10 * time.Second, 30 * time.Second,
	}
}

// Histogram is a fixed-bucket histogram of durations. Observe is wait-free:
// one bounded scan over ~15 bounds plus three atomic adds, zero allocations.
// Quantiles are streamed from the bucket counts — no sample retention, no
// sort — with linear interpolation inside the resolving bucket.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds
	counts []atomic.Int64  // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram builds a histogram; nil bounds take DefaultLatencyBuckets.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe folds one duration into the histogram.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for ; i < len(h.bounds); i++ {
		if d <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count reports total observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the accumulated duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-quantile (0..1) from the bucket counts: the
// nearest-rank bucket is found by cumulative count, then the value is
// interpolated linearly inside it. 0 when empty. The overflow bucket
// reports its lower bound (the largest finite bound) — an estimate can
// never exceed what the buckets resolve.
func (h *Histogram) Quantile(q float64) time.Duration {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if cum+c < rank {
			cum += c
			continue
		}
		var lo time.Duration
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i == len(h.bounds) {
			return lo // overflow bucket: clamp to the largest finite bound
		}
		hi := h.bounds[i]
		frac := float64(rank-cum) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return h.bounds[len(h.bounds)-1]
}

// BucketCount is one bucket of a histogram snapshot.
type BucketCount struct {
	UpperBound time.Duration // the overflow bucket reports 0 (unbounded)
	Count      int64         // non-cumulative
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets []BucketCount
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]BucketCount, len(h.counts))}
	for i := range h.counts {
		b := BucketCount{Count: h.counts[i].Load()}
		if i < len(h.bounds) {
			b.UpperBound = h.bounds[i]
		}
		s.Buckets[i] = b
		s.Count += b.Count
	}
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// fmtFloat renders a float the way Prometheus expects.
func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by family then label set, with
// one HELP/TYPE block per family.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].family != ms[j].family {
			return ms[i].family < ms[j].family
		}
		return ms[i].labels < ms[j].labels
	})
	lastFamily := ""
	for _, m := range ms {
		if m.family != lastFamily {
			lastFamily = m.family
			typ := "counter"
			switch m.kind {
			case kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			fmt.Fprintf(w, "# HELP %s %s\n", m.family, m.help)
			fmt.Fprintf(w, "# TYPE %s %s\n", m.family, typ)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case kindCounterFunc:
			fmt.Fprintf(w, "%s %d\n", m.name, m.counterFn())
		case kindGaugeFunc:
			fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.gaugeFn()))
		case kindHistogram:
			writeHistogram(w, m)
		}
	}
}

// writeHistogram renders one histogram family member: cumulative _bucket
// series with the le label merged into any existing labels, then _sum
// (seconds) and _count.
func writeHistogram(w io.Writer, m *metric) {
	snap := m.hist.Snapshot()
	series := func(suffix, extra string) string {
		labels := m.labels
		if extra != "" {
			if labels != "" {
				labels += ","
			}
			labels += extra
		}
		if labels == "" {
			return m.family + suffix
		}
		return m.family + suffix + "{" + labels + "}"
	}
	var cum int64
	for _, b := range snap.Buckets {
		cum += b.Count
		le := "+Inf"
		if b.UpperBound > 0 {
			le = fmtFloat(b.UpperBound.Seconds())
		}
		fmt.Fprintf(w, "%s %d\n", series("_bucket", `le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s %s\n", series("_sum", ""), fmtFloat(snap.Sum.Seconds()))
	fmt.Fprintf(w, "%s %d\n", series("_count", ""), snap.Count)
}
