package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock steps a deterministic time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestSpanLifecycle(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistry()
	rec := NewSpanRecorder(reg, 16, clk.Now)

	sp := rec.Start()
	clk.Advance(2 * time.Millisecond)
	sp.EndStage(StageAdmission)
	clk.Advance(3 * time.Millisecond)
	sp.EndStage(StageCache)
	clk.Advance(40 * time.Millisecond)
	sp.EndStage(StageOrigin)
	sp.SetOutcome(OutcomeOrigin)
	sp.SetSig("sig-1")
	sp.SetUser("u-1")
	clk.Advance(time.Millisecond) // unattributed tail
	sp.Finish()

	if rec.Total() != 1 {
		t.Fatalf("total = %d", rec.Total())
	}
	if rec.OutcomeCount(OutcomeOrigin) != 1 {
		t.Fatal("outcome counter not incremented")
	}
	spans := rec.Recent(10)
	if len(spans) != 1 {
		t.Fatalf("recent = %d spans", len(spans))
	}
	s := spans[0]
	if s.Outcome != OutcomeOrigin || s.SigID != "sig-1" || s.User != "u-1" {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Wall != 46*time.Millisecond {
		t.Fatalf("wall = %v, want 46ms", s.Wall)
	}
	if s.Stages[StageAdmission] != 2*time.Millisecond ||
		s.Stages[StageCache] != 3*time.Millisecond ||
		s.Stages[StageOrigin] != 40*time.Millisecond {
		t.Fatalf("stages = %v", s.Stages)
	}
	if sum := s.StageSum(); sum != 45*time.Millisecond || sum > s.Wall {
		t.Fatalf("stage sum = %v, wall = %v", sum, s.Wall)
	}
	// The wall histogram saw the request.
	if got := rec.WallQuantile(OutcomeOrigin, 0.5); got <= 0 {
		t.Fatalf("wall p50 = %v", got)
	}
}

func TestSpanSkipStage(t *testing.T) {
	clk := newFakeClock()
	rec := NewSpanRecorder(NewRegistry(), 16, clk.Now)
	sp := rec.Start()
	clk.Advance(10 * time.Millisecond)
	sp.SkipStage() // 10ms deliberately unattributed
	clk.Advance(5 * time.Millisecond)
	sp.EndStage(StageWrite)
	sp.SetOutcome(OutcomePrefetchHit)
	sp.Finish()
	s := rec.Recent(1)[0]
	if s.Stages[StageWrite] != 5*time.Millisecond {
		t.Fatalf("write stage = %v", s.Stages[StageWrite])
	}
	if s.Wall != 15*time.Millisecond {
		t.Fatalf("wall = %v", s.Wall)
	}
}

func TestSpanRingWraparound(t *testing.T) {
	clk := newFakeClock()
	rec := NewSpanRecorder(NewRegistry(), 16, clk.Now)
	for i := 0; i < 40; i++ {
		sp := rec.Start()
		clk.Advance(time.Millisecond)
		sp.SetOutcome(OutcomeOrigin)
		sp.Finish()
	}
	if rec.Total() != 40 {
		t.Fatalf("total = %d", rec.Total())
	}
	spans := rec.Recent(100)
	if len(spans) != 16 {
		t.Fatalf("ring kept %d spans, want capacity 16", len(spans))
	}
	// Newest first, contiguous IDs 40..25.
	for i, s := range spans {
		if want := uint64(40 - i); s.ID != want {
			t.Fatalf("spans[%d].ID = %d, want %d", i, s.ID, want)
		}
	}
}

// A nil recorder (observability disabled) must make every span call a
// no-op rather than a panic.
func TestNilRecorderSafe(t *testing.T) {
	var rec *SpanRecorder
	sp := rec.Start()
	sp.EndStage(StageCache)
	sp.SkipStage()
	sp.SetOutcome(OutcomeShed)
	sp.SetSig("x")
	sp.SetUser("y")
	sp.Finish()
	if rec.Total() != 0 || rec.Recent(5) != nil || rec.OutcomeCount(OutcomeShed) != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if rec.WallQuantile(OutcomeShed, 0.5) != 0 || rec.StageHistogram(StageCache) != nil {
		t.Fatal("nil recorder accessors not zero")
	}
}

// Race-gated: spans recorded concurrently with ring reads and scrapes.
func TestSpanRecorderConcurrent(t *testing.T) {
	reg := NewRegistry()
	rec := NewSpanRecorder(reg, 64, nil)
	var wg sync.WaitGroup
	const perWorker = 500
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := rec.Start()
				sp.EndStage(StageParse)
				sp.EndStage(StageCache)
				sp.SetOutcome(Outcome(1 + (i % int(NumOutcomes-1))))
				sp.Finish()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = rec.Recent(32)
			_ = rec.Total()
		}
	}()
	wg.Wait()
	<-done
	if rec.Total() != 4*perWorker {
		t.Fatalf("total = %d, want %d", rec.Total(), 4*perWorker)
	}
	var sum int64
	for o := Outcome(0); o < NumOutcomes; o++ {
		sum += rec.OutcomeCount(o)
	}
	if sum != 4*perWorker {
		t.Fatalf("outcome counters sum = %d, want %d", sum, 4*perWorker)
	}
}
