package obs

import (
	"testing"
	"time"
)

// BenchmarkHistogramObserve is the hot-path cost of one latency
// observation. scripts/check.sh smoke-runs it; the ≤2 allocs/op acceptance
// bound is enforced by TestHistogramObserveAllocs below.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%200) * time.Millisecond)
	}
}

// BenchmarkSpanRecord is the full per-request span cost: start, four stage
// boundaries, outcome, finish (pool round trip + ring copy + histograms).
func BenchmarkSpanRecord(b *testing.B) {
	rec := NewSpanRecorder(NewRegistry(), 1024, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := rec.Start()
		sp.EndStage(StageAdmission)
		sp.EndStage(StageCache)
		sp.EndStage(StageOrigin)
		sp.EndStage(StageWrite)
		sp.SetOutcome(OutcomeOrigin)
		sp.SetSig("bench:sig#0")
		sp.Finish()
	}
}

// The acceptance bound from ISSUE 5: span recording and histogram
// observation on the request hot path must cost ≤2 allocs/op. Steady state
// is 0 for both; the bound leaves room for pool warm-up.
func TestHistogramObserveAllocs(t *testing.T) {
	h := NewHistogram(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(7 * time.Millisecond)
	})
	if allocs > 2 {
		t.Fatalf("Histogram.Observe = %.1f allocs/op, want <= 2", allocs)
	}
}

func TestSpanRecordAllocs(t *testing.T) {
	rec := NewSpanRecorder(NewRegistry(), 1024, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := rec.Start()
		sp.EndStage(StageAdmission)
		sp.EndStage(StageCache)
		sp.EndStage(StageOrigin)
		sp.EndStage(StageWrite)
		sp.SetOutcome(OutcomeOrigin)
		sp.SetSig("bench:sig#0")
		sp.Finish()
	})
	if allocs > 2 {
		t.Fatalf("span record = %.1f allocs/op, want <= 2", allocs)
	}
}
