// Package adminv1 defines the typed response schema of the proxy's
// versioned admin API (/appx/v1/*). The proxy encodes these structs; tools
// (appx-bench's admin mode) and tests decode into them — no side of the
// contract builds map[string]any by hand, so a field rename is a compile
// error instead of a silently-missing JSON key.
//
// Schema evolution rule: fields may be added to a v1 struct (decoders
// ignore unknown keys) but never removed or retyped; incompatible changes
// get a new version prefix.
package adminv1

import "time"

// The versioned endpoint paths, shared by server and clients.
const (
	PathHealth  = "/appx/v1/health"
	PathStats   = "/appx/v1/stats"
	PathSpans   = "/appx/v1/spans"
	PathMetrics = "/appx/v1/metrics" // Prometheus text, not JSON

	// PathClusterEntry is the peer-fill peek endpoint: a ring sibling asks
	// whether this instance's shared cache tier holds a canonical key
	// (?key=...). 200 returns a ClusterEntry, 404 is a miss. Peeks are
	// side-effect-free on the serving instance (no LRU touch, no counters).
	PathClusterEntry = "/appx/v1/cluster/entry"

	// The pre-versioning endpoints, kept as deprecated redirecting aliases.
	LegacyPathHealth = "/appx/health"
	LegacyPathStats  = "/appx/stats"
)

// MatchIndex mirrors the signature match-index telemetry.
type MatchIndex struct {
	Lookups        int64 `json:"lookups"`
	ExactHits      int64 `json:"exactHits"`
	TrieCandidates int64 `json:"trieCandidates"`
	RegexEvals     int64 `json:"regexEvals"`
	RegexMatches   int64 `json:"regexMatches"`
}

// Overload is the admission-gate/governor block shared by stats and health.
type Overload struct {
	Mode               string  `json:"mode"`
	Level              float64 `json:"level"`
	Admitted           int64   `json:"admitted"`
	AdmissionShed      int64   `json:"admissionShed"`
	GovernorSuppressed int64   `json:"governorSuppressed"`
	ClientP50Ms        int64   `json:"clientP50Ms"`
	ClientP95Ms        int64   `json:"clientP95Ms"`
	ClientP99Ms        int64   `json:"clientP99Ms"`
}

// SchedClass is one priority class's scheduler counters.
type SchedClass struct {
	Submitted      int64 `json:"submitted"`
	Ran            int64 `json:"ran"`
	DroppedFull    int64 `json:"droppedFull"`
	DroppedClosed  int64 `json:"droppedClosed"`
	DroppedExpired int64 `json:"droppedExpired"`
}

// Sched is the prefetch scheduler block shared by stats and health.
type Sched struct {
	Queue      int        `json:"queue"`
	Capacity   int        `json:"capacity"`
	Panics     int64      `json:"panics"`
	Foreground SchedClass `json:"foreground"`
	Shallow    SchedClass `json:"shallow"`
	Deep       SchedClass `json:"deep"`
}

// CacheEvictions breaks evicted entries down by cause.
type CacheEvictions struct {
	Expired     int64 `json:"expired"`
	Budget      int64 `json:"budget"`
	UserBytes   int64 `json:"userBytes"`
	UserEntries int64 `json:"userEntries"`
	Replaced    int64 `json:"replaced"`
	UserDropped int64 `json:"userDropped"`
}

// Cache is the prefetch-store block of the health response.
type Cache struct {
	ResidentBytes  int64          `json:"residentBytes"`
	Entries        int            `json:"entries"`
	Hits           int64          `json:"hits"`
	Misses         int64          `json:"misses"`
	SharedHits     int64          `json:"sharedHits"`
	SharedHitRatio float64        `json:"sharedHitRatio"`
	SharedEntries  int            `json:"sharedEntries"`
	SharedBytes    int64          `json:"sharedBytes"`
	Evictions      CacheEvictions `json:"evictions"`
}

// Breaker is one origin host's circuit-breaker state.
type Breaker struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	OpenForMs           int64  `json:"openForMs"`
}

// SuspendedSignature is one signature inside its prefetch-failure backoff
// window.
type SuspendedSignature struct {
	ConsecutiveFailures int   `json:"consecutiveFailures"`
	ResumeInMs          int64 `json:"resumeInMs"`
}

// OutcomeStats summarizes one terminal outcome's request population.
type OutcomeStats struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// Requests is the span-derived request-lifecycle block of the stats
// response: per-outcome counts and wall-time quantiles, plus per-stage p95.
type Requests struct {
	Total      uint64                  `json:"total"`
	Outcomes   map[string]OutcomeStats `json:"outcomes"`
	StageP95Ms map[string]float64      `json:"stageP95Ms"`
}

// Persist is the crash-safe-persistence block of the stats response:
// snapshot freshness, the boot-time restore outcome, and disk-tier
// traffic. SnapshotAgeMs is -1 while no snapshot has been written.
type Persist struct {
	Enabled          bool   `json:"enabled"`
	RestoreOutcome   string `json:"restoreOutcome"`
	RestoreSource    string `json:"restoreSource,omitempty"`
	RestoreDetail    string `json:"restoreDetail,omitempty"`
	RestoreFailures  int64  `json:"restoreFailures"`
	Snapshots        int64  `json:"snapshots"`
	SnapshotFailures int64  `json:"snapshotFailures"`
	SnapshotAgeMs    int64  `json:"snapshotAgeMs"`
	DiskEntries      int    `json:"diskEntries"`
	DiskBytes        int64  `json:"diskBytes"`
	DiskHits         int64  `json:"diskHits"`
	DiskLoads        int64  `json:"diskLoads"`
	DiskLoadErrors   int64  `json:"diskLoadErrors"`
	DiskSpilled      int64  `json:"diskSpilled"`
	DiskSpillDropped int64  `json:"diskSpillDropped"`
	DiskSpillErrors  int64  `json:"diskSpillErrors"`
	DiskEvictions    int64  `json:"diskEvictions"`
}

// ClusterPeer is one configured peer's membership view.
type ClusterPeer struct {
	Alive               bool   `json:"alive"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutiveFailures"`
}

// ClusterPeerFill summarizes the sibling-before-origin fill protocol.
type ClusterPeerFill struct {
	Attempts int64 `json:"attempts"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Errors   int64 `json:"errors"`
}

// Cluster is the scale-out block of the stats response. Forwarded counts
// requests this instance relayed to their owner; ReceivedForwards counts
// requests that arrived with the hop header (served locally, never
// re-forwarded). Rebalances and ScopesDropped track incremental topology
// moves: only user scopes whose hash arc changed owner are dropped.
type Cluster struct {
	Enabled          bool                   `json:"enabled"`
	Self             string                 `json:"self"`
	VNodes           int                    `json:"vnodes"`
	Members          []string               `json:"members"`
	Peers            map[string]ClusterPeer `json:"peers,omitempty"`
	Forwarded        int64                  `json:"forwarded"`
	ForwardFallbacks int64                  `json:"forwardFallbacks"`
	ReceivedForwards int64                  `json:"receivedForwards"`
	PeerFill         ClusterPeerFill        `json:"peerFill"`
	Rebalances       int64                  `json:"rebalances"`
	ScopesDropped    int64                  `json:"scopesDropped"`
	ProbeFailures    int64                  `json:"probeFailures"`
	RingRebuilds     int64                  `json:"ringRebuilds"`
	// ForwardLoops counts relayed responses that arrived already carrying
	// the forwarded marker — evidence the one-hop rule was violated. The
	// chaos oracle asserts this stays zero.
	ForwardLoops int64 `json:"forwardLoops"`
	Hedge        Hedge `json:"hedge"`
}

// Hedge is the hedged-peer-read block inside Cluster.
type Hedge struct {
	Enabled bool `json:"enabled"`
	// DelayMs is the static fallback hedging delay; per-peer adaptive
	// delays take over once a peer has enough observed fills.
	DelayMs int64 `json:"delayMs"`
	// RateCap is the cluster-wide hedge launch cap per second.
	RateCap float64 `json:"rateCap"`
	// Launched counts hedge attempts actually sent.
	Launched int64 `json:"launched"`
	// Wins counts hedges whose response won the race.
	Wins int64 `json:"wins"`
	// Losses counts hedges the primary attempt beat.
	Losses int64 `json:"losses"`
	// Suppressed counts hedges withheld by the rate cap or the governor.
	Suppressed int64 `json:"suppressed"`
}

// Budget is the request-latency-budget block of /appx/v1/stats.
type Budget struct {
	Enabled bool `json:"enabled"`
	// LimitMs is the locally configured per-request budget (0 = none; the
	// instance then only honours inherited budgets).
	LimitMs int64 `json:"limitMs"`
	// Inherited counts requests that arrived with a relay-propagated budget
	// header.
	Inherited int64 `json:"inherited"`
	// Clamped counts inherited budgets larger than the local limit (the
	// smaller value always wins — a budget never grows across hops).
	Clamped int64 `json:"clamped"`
	// Exhausted counts stage attempts skipped because the budget had
	// already run out.
	Exhausted int64 `json:"exhausted"`
}

// PolicyEntry is the prefetch-policy block of /appx/v1/stats: which policy
// is configured and which is currently active (the proxy falls back to
// static while the governor sheds), the history model's size, and the
// decision-path telemetry.
type PolicyEntry struct {
	// Configured is the policy selected by -prefetch-policy.
	Configured string `json:"configured"`
	// Active is the policy answering Rank calls right now; differs from
	// Configured while the governor's mode hot-swaps markov out.
	Active string `json:"active"`
	// Users / Rows / Transitions size the history model (zero for static).
	Users       int `json:"users"`
	Rows        int `json:"rows"`
	Transitions int `json:"transitions"`
	// TableBytes estimates the transition tables' memory footprint.
	TableBytes int64 `json:"tableBytes"`
	// Observations counts live hits folded into the model.
	Observations int64 `json:"observations"`
	// RankCalls counts policy ranking decisions.
	RankCalls int64 `json:"rankCalls"`
	// Pruned counts candidates dropped as history-unlikely.
	Pruned int64 `json:"pruned"`
	// Reordered counts Rank calls that changed the candidate order.
	Reordered int64 `json:"reordered"`
	// RankP95Micros is the p95 latency of one Rank call, in microseconds.
	RankP95Micros float64 `json:"rankP95Micros"`
	// Skip counters mirror appx_prefetch_skipped_total by reason:
	// candidates dropped before reaching the scheduler.
	NoExemplarSkips  int64 `json:"noExemplarSkips"`
	NoDepValueSkips  int64 `json:"noDepValueSkips"`
	PendingFullSkips int64 `json:"pendingFullSkips"`
	DepthSkips       int64 `json:"depthSkips"`
	UnlikelySkips    int64 `json:"unlikelySkips"`
}

// HeaderField is one stored response header in a ClusterEntry.
type HeaderField struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// ClusterEntry is the body of a 200 from PathClusterEntry: a shared-tier
// cache entry serialized for a sibling. ExpiresInMs is a relative TTL so
// peers need no clock agreement; Body is base64 via encoding/json's []byte
// rule.
type ClusterEntry struct {
	SigID       string        `json:"sigId"`
	Status      int           `json:"status"`
	Header      []HeaderField `json:"header,omitempty"`
	Body        []byte        `json:"body,omitempty"`
	ExpiresInMs int64         `json:"expiresInMs"`
	Refreshed   bool          `json:"refreshed"`
}

// StatsResponse is the body of GET /appx/v1/stats.
type StatsResponse struct {
	MatchIndex           MatchIndex  `json:"matchIndex"`
	Hits                 int         `json:"hits"`
	SharedHits           int         `json:"sharedHits"`
	Misses               int         `json:"misses"`
	Prefetches           int         `json:"prefetches"`
	HitRatio             float64     `json:"hitRatio"`
	SharedHitRatio       float64     `json:"sharedHitRatio"`
	DataUsage            float64     `json:"dataUsage"`
	UsedPrefetchRatio    float64     `json:"usedPrefetchRatio"`
	SavedLatencyMs       int64       `json:"savedLatencyMs"`
	Users                int         `json:"users"`
	PrefetchQueue        int         `json:"prefetchQueue"`
	DataUsedBytes        int64       `json:"dataUsedBytes"`
	CacheResidentBytes   int64       `json:"cacheResidentBytes"`
	Retries              int         `json:"retries"`
	PrefetchErrors       int         `json:"prefetchErrors"`
	SuppressedPrefetches int         `json:"suppressedPrefetches"`
	Overload             Overload    `json:"overload"`
	Sched                Sched       `json:"sched"`
	Requests             Requests    `json:"requests"`
	Persist              Persist     `json:"persist"`
	Cluster              Cluster     `json:"cluster"`
	Budget               Budget      `json:"budget"`
	Policy               PolicyEntry `json:"policy"`
}

// HealthResponse is the body of GET /appx/v1/health.
type HealthResponse struct {
	Status               string                        `json:"status"`
	Breakers             map[string]Breaker            `json:"breakers"`
	SuspendedSignatures  map[string]SuspendedSignature `json:"suspendedSignatures"`
	Retries              int                           `json:"retries"`
	PrefetchErrors       int                           `json:"prefetchErrors"`
	SuppressedPrefetches int                           `json:"suppressedPrefetches"`
	PrefetchQueue        int                           `json:"prefetchQueue"`
	DataUsedBytes        int64                         `json:"dataUsedBytes"`
	Overload             Overload                      `json:"overload"`
	Sched                Sched                         `json:"sched"`
	Cache                Cache                         `json:"cache"`
}

// Span is one finished request-lifecycle span.
type Span struct {
	ID      uint64             `json:"id"`
	Start   time.Time          `json:"start"`
	WallMs  float64            `json:"wallMs"`
	Outcome string             `json:"outcome"`
	SigID   string             `json:"sigId,omitempty"`
	User    string             `json:"user,omitempty"`
	StageMs map[string]float64 `json:"stageMs,omitempty"`
}

// SpansResponse is the body of GET /appx/v1/spans: the lifetime span count
// and up to `n` (query parameter, default 64) most recent spans, newest
// first.
type SpansResponse struct {
	Total uint64 `json:"total"`
	Spans []Span `json:"spans"`
}
