package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndFuncs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("appx_test_total", "test counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var backing int64 = 7
	r.CounterFunc("appx_cf_total", "func counter", func() int64 { return backing })
	r.GaugeFunc("appx_gauge", "func gauge", func() float64 { return 2.5 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP appx_test_total test counter",
		"# TYPE appx_test_total counter",
		"appx_test_total 5",
		"appx_cf_total 7",
		"# TYPE appx_gauge gauge",
		"appx_gauge 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("appx_dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("appx_dup_total", "")
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]time.Duration{
		10 * time.Millisecond, 100 * time.Millisecond, time.Second,
	})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 90 observations in (0,10ms], 10 in (10ms,100ms].
	for i := 0; i < 90; i++ {
		h.Observe(5 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// p50 resolves inside the first bucket: rank 50 of 90 → 10ms·50/90.
	if got, want := h.Quantile(0.5), 10*time.Millisecond*50/90; got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("p50 = %v, want ≈%v", got, want)
	}
	// p95 resolves inside the second bucket: rank 95, 5 of 10 into it.
	p95 := h.Quantile(0.95)
	if p95 < 10*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v outside its bucket", p95)
	}
	// Quantiles are monotone in q and bounded by the largest finite bound.
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(1) > time.Second {
		t.Fatalf("p100 = %v exceeds the largest bound", h.Quantile(1))
	}
}

func TestHistogramOverflowBucketClamps(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond})
	h.Observe(time.Hour) // lands in the overflow bucket
	if got := h.Quantile(0.99); got != time.Millisecond {
		t.Fatalf("overflow quantile = %v, want clamp to 1ms", got)
	}
	if h.Sum() != time.Hour {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestHistogramPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`appx_lat_seconds{outcome="origin"}`, "latency",
		[]time.Duration{10 * time.Millisecond, time.Second})
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(100 * time.Millisecond)
	h.Observe(time.Minute)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE appx_lat_seconds histogram",
		`appx_lat_seconds_bucket{outcome="origin",le="0.01"} 2`,
		`appx_lat_seconds_bucket{outcome="origin",le="1"} 3`,
		`appx_lat_seconds_bucket{outcome="origin",le="+Inf"} 4`,
		`appx_lat_seconds_count{outcome="origin"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Shared-family labeled counters get exactly one HELP/TYPE block.
func TestLabeledFamilySingleHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter(`appx_reqs_total{outcome="a"}`, "reqs")
	r.Counter(`appx_reqs_total{outcome="b"}`, "reqs")
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if got := strings.Count(out, "# TYPE appx_reqs_total counter"); got != 1 {
		t.Fatalf("TYPE blocks = %d, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, `appx_reqs_total{outcome="a"} 0`) ||
		!strings.Contains(out, `appx_reqs_total{outcome="b"} 0`) {
		t.Fatalf("labeled series missing:\n%s", out)
	}
}

// Race-gated: concurrent hot-path writers against a scraping reader. Run
// under -race (scripts/check.sh gates on it) this verifies the registry's
// concurrency contract.
func TestRegistryConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("appx_conc_total", "")
	h := r.Histogram("appx_conc_seconds", "", nil)
	var wg sync.WaitGroup
	const perWorker = 2000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(time.Duration(seed+i%100) * time.Millisecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WritePrometheus(&b)
			_ = h.Quantile(0.95)
			_ = h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 4*perWorker || h.Count() != 4*perWorker {
		t.Fatalf("writes lost: counter=%d hist=%d, want %d", c.Value(), h.Count(), 4*perWorker)
	}
}
