package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage enumerates the request-lifecycle segments a span attributes time
// to. Stages are disjoint slices of one request's timeline, so their sum is
// bounded by the span's wall time.
type Stage uint8

const (
	// StageAdmission is time spent waiting for (or being refused) an
	// admission slot.
	StageAdmission Stage = iota
	// StageParse is request decode, user resolution, and canonical keying.
	StageParse
	// StageCache is the prefetch-store lookup (both tiers).
	StageCache
	// StageOrigin is the upstream round trip, retries included.
	StageOrigin
	// StageWrite is writing the response to the client.
	StageWrite
	// StageLearn is signature matching plus dynamic learning after the
	// response was delivered.
	StageLearn
	// StageStream is body streaming time after the response headers and
	// first write: the window where origin, spool, and client overlap.
	// StageWrite now covers only status/header delivery (the user-perceived
	// first-byte point); the body transfer itself is attributed here.
	StageStream

	// NumStages bounds the Stage enum.
	NumStages
)

// String names the stage for telemetry.
func (s Stage) String() string {
	switch s {
	case StageAdmission:
		return "admission"
	case StageParse:
		return "parse"
	case StageCache:
		return "cache"
	case StageOrigin:
		return "origin"
	case StageWrite:
		return "write"
	case StageLearn:
		return "learn"
	case StageStream:
		return "stream"
	}
	return "unknown"
}

// Outcome is a request's terminal disposition.
type Outcome uint8

const (
	// OutcomeUnknown marks a span finished without a disposition (a bug in
	// the instrumentation, kept visible rather than folded elsewhere).
	OutcomeUnknown Outcome = iota
	// OutcomePrefetchHit: served from the prefetch store.
	OutcomePrefetchHit
	// OutcomeRefreshHit: served from the store, from an entry produced by a
	// foreground refresh of an expired entry rather than a speculative
	// prefetch.
	OutcomeRefreshHit
	// OutcomeShed: refused by admission control or lifecycle draining.
	OutcomeShed
	// OutcomeOrigin: forwarded to the origin and answered.
	OutcomeOrigin
	// OutcomeForwarded: relayed to the cluster instance owning the user's
	// state and answered from there.
	OutcomeForwarded
	// OutcomePeerHit: served locally from a shared-tier entry pulled from a
	// ring sibling by the cluster peer-fill protocol (no origin round trip).
	OutcomePeerHit
	// OutcomeError: the request failed (malformed, or the origin path
	// errored after retries).
	OutcomeError
	// OutcomeAttachHit: served by attaching to another request's in-flight
	// origin fetch for the same canonical key — no second origin round trip.
	OutcomeAttachHit

	// NumOutcomes bounds the Outcome enum.
	NumOutcomes
)

// String names the outcome for telemetry.
func (o Outcome) String() string {
	switch o {
	case OutcomePrefetchHit:
		return "prefetch-hit"
	case OutcomeRefreshHit:
		return "refresh-hit"
	case OutcomeShed:
		return "shed"
	case OutcomeOrigin:
		return "origin"
	case OutcomeForwarded:
		return "forwarded"
	case OutcomePeerHit:
		return "peer-hit"
	case OutcomeError:
		return "error"
	case OutcomeAttachHit:
		return "attach-hit"
	}
	return "unknown"
}

// Span is one request's lifecycle record. Spans are pooled: obtain one from
// SpanRecorder.Start, mark stage boundaries as the request progresses, and
// call Finish exactly once — after which the span must not be touched.
// All methods are nil-receiver-safe so a disabled recorder costs callers
// nothing but the calls.
type Span struct {
	rec     *SpanRecorder
	id      uint64
	start   time.Time
	mark    time.Time
	stages  [NumStages]time.Duration
	outcome Outcome
	sigID   string
	user    string
}

// EndStage closes the stage that began at the previous boundary (Start or
// the last EndStage), attributing the elapsed time to st. A stage may be
// closed more than once; durations accumulate.
func (s *Span) EndStage(st Stage) {
	if s == nil {
		return
	}
	now := s.rec.now()
	s.stages[st] += now.Sub(s.mark)
	s.mark = now
}

// SkipStage moves the stage boundary to now without attributing the elapsed
// time anywhere (time the span explicitly does not account for).
func (s *Span) SkipStage() {
	if s == nil {
		return
	}
	s.mark = s.rec.now()
}

// SetOutcome records the request's terminal disposition.
func (s *Span) SetOutcome(o Outcome) {
	if s != nil {
		s.outcome = o
	}
}

// SetSig attributes the span to a signature.
func (s *Span) SetSig(id string) {
	if s != nil {
		s.sigID = id
	}
}

// SetUser tags the span with the proxy's user key.
func (s *Span) SetUser(u string) {
	if s != nil {
		s.user = u
	}
}

// Finish seals the span: wall time is measured, the outcome counter and the
// wall/stage histograms absorb it, and a snapshot lands in the recorder's
// ring buffer. The span returns to the pool; the caller must drop every
// reference.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	r := s.rec
	wall := r.now().Sub(s.start)
	r.outcomes[s.outcome].Inc()
	r.wall[s.outcome].Observe(wall)
	for i := range s.stages {
		if s.stages[i] > 0 {
			r.stages[i].Observe(s.stages[i])
		}
	}
	r.mu.Lock()
	slot := &r.ring[r.next]
	slot.ID = s.id
	slot.Start = s.start
	slot.Wall = wall
	slot.Outcome = s.outcome
	slot.SigID = s.sigID
	slot.User = s.user
	slot.Stages = s.stages
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	if r.filled < len(r.ring) {
		r.filled++
	}
	r.mu.Unlock()
	r.total.Add(1)
	*s = Span{rec: r}
	r.pool.Put(s)
}

// SpanSnapshot is one finished span as kept in the ring buffer.
type SpanSnapshot struct {
	ID      uint64
	Start   time.Time
	Wall    time.Duration
	Outcome Outcome
	SigID   string
	User    string
	Stages  [NumStages]time.Duration
}

// StageSum is the total attributed stage time (≤ Wall by construction).
func (s SpanSnapshot) StageSum() time.Duration {
	var sum time.Duration
	for _, d := range s.Stages {
		sum += d
	}
	return sum
}

// SpanRecorder hands out pooled spans, aggregates them into per-outcome
// counters and wall/stage histograms on a Registry, and keeps a bounded
// ring of recent spans for inspection through the admin API.
type SpanRecorder struct {
	now  func() time.Time
	pool sync.Pool

	outcomes [NumOutcomes]*Counter
	wall     [NumOutcomes]*Histogram
	stages   [NumStages]*Histogram

	total atomic.Uint64
	id    atomic.Uint64

	mu     sync.Mutex
	ring   []SpanSnapshot
	next   int
	filled int
}

// NewSpanRecorder builds a recorder keeping the last capacity spans
// (minimum 16, default 1024 when capacity is 0) and registering its
// instruments on reg. now defaults to time.Now.
func NewSpanRecorder(reg *Registry, capacity int, now func() time.Time) *SpanRecorder {
	if capacity == 0 {
		capacity = 1024
	}
	if capacity < 16 {
		capacity = 16
	}
	if now == nil {
		now = time.Now
	}
	r := &SpanRecorder{now: now, ring: make([]SpanSnapshot, capacity)}
	r.pool.New = func() any { return &Span{rec: r} }
	for o := Outcome(0); o < NumOutcomes; o++ {
		lbl := `{outcome="` + o.String() + `"}`
		r.outcomes[o] = reg.Counter("appx_requests_total"+lbl,
			"Proxied client requests by terminal outcome.")
		r.wall[o] = reg.Histogram("appx_request_duration_seconds"+lbl,
			"User-perceived request wall time by terminal outcome.", nil)
	}
	for st := Stage(0); st < NumStages; st++ {
		r.stages[st] = reg.Histogram(
			`appx_request_stage_seconds{stage="`+st.String()+`"}`,
			"Per-request time attributed to each lifecycle stage.", nil)
	}
	return r
}

// Start begins a span at now. Nil-safe: a nil recorder returns a nil span
// whose methods are all no-ops.
func (r *SpanRecorder) Start() *Span {
	if r == nil {
		return nil
	}
	s := r.pool.Get().(*Span)
	s.id = r.id.Add(1)
	s.start = r.now()
	s.mark = s.start
	return s
}

// Total reports the lifetime count of finished spans.
func (r *SpanRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// OutcomeCount reports the lifetime count of one outcome.
func (r *SpanRecorder) OutcomeCount(o Outcome) int64 {
	if r == nil || o >= NumOutcomes {
		return 0
	}
	return r.outcomes[o].Value()
}

// WallQuantile reports the q-quantile of one outcome's wall-time histogram.
func (r *SpanRecorder) WallQuantile(o Outcome, q float64) time.Duration {
	if r == nil || o >= NumOutcomes {
		return 0
	}
	return r.wall[o].Quantile(q)
}

// StageHistogram exposes one stage's histogram (admin snapshots).
func (r *SpanRecorder) StageHistogram(st Stage) *Histogram {
	if r == nil || st >= NumStages {
		return nil
	}
	return r.stages[st]
}

// Recent returns up to n of the most recently finished spans, newest first.
func (r *SpanRecorder) Recent(n int) []SpanSnapshot {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.filled {
		n = r.filled
	}
	out := make([]SpanSnapshot, n)
	idx := r.next
	for i := 0; i < n; i++ {
		idx--
		if idx < 0 {
			idx = len(r.ring) - 1
		}
		out[i] = r.ring[idx]
	}
	return out
}
