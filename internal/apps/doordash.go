package apps

import (
	"net/http"
	"time"

	"appx/internal/air"
	"appx/internal/apk"
)

const (
	ddAPIHost = "api.doordash.example"
	ddImgHost = "img.doordash.example"
	ddStoreN  = 16
	ddMenuN   = 12
)

// DoorDash builds the food-delivery app with the paper's Figure-11
// successive dependency chain: store list → store info → menu → menu item →
// suggestion, each request keyed by an id from the previous response. The
// main interaction ("Loads a restaurant info", Table 1) issues the store
// info, schedule, and menu transactions.
func DoorDash() *App {
	pb := air.NewProgramBuilder()
	main := pb.Class("DDMain", air.KindActivity)

	m := main.Method("launch", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://"+ddAPIHost+"/v2/stores"))
	m.CallAPI(air.APIHTTPAddHeader, req, m.ConstStr("User-Agent"), m.CallAPI(air.APIDeviceUserAgent))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	m.CallAPI(air.APIIntentPut, m.ConstStr("dd.stores"), body)
	sids := m.CallAPI(air.APIJSONGet, body, m.ConstStr("stores[*].id"))
	m.ForEach(sids, "DDMain.loadStoreImage")
	m.CallAPI(air.APIUIRender, m.ConstStr("stores"))
	m.Done()

	li := main.Method("loadStoreImage", 1)
	lreq := li.CallAPI(air.APIHTTPNewRequest, li.ConstStr("GET"))
	li.CallAPI(air.APIHTTPSetURL, lreq, li.StrConcat("http://"+ddImgHost+"/simg?sid=", li.Param(0)))
	lresp := li.CallAPI(air.APIHTTPExecute, lreq)
	li.CallAPI(air.APIUIShowImage, lresp)
	li.Done()

	sel := main.Method("onSelectStore", 1)
	stores := sel.CallAPI(air.APIIntentGet, sel.ConstStr("dd.stores"))
	ids := sel.CallAPI(air.APIJSONGet, stores, sel.ConstStr("stores[*].id"))
	sid := sel.CallAPI(air.APIListGet, ids, sel.Param(0))
	sel.CallAPI(air.APIIntentPut, sel.ConstStr("dd.sel"), sid)
	sel.Invoke("DDStore.open")
	sel.Done()

	store := pb.Class("DDStore", air.KindActivity)
	s := store.Method("open", 0)
	sid2 := s.CallAPI(air.APIIntentGet, s.ConstStr("dd.sel"))
	sreq := s.CallAPI(air.APIHTTPNewRequest, s.ConstStr("GET"))
	s.CallAPI(air.APIHTTPSetURL, sreq, s.ConstStr("http://"+ddAPIHost+"/v2/store"))
	s.CallAPI(air.APIHTTPAddQuery, sreq, s.ConstStr("store_id"), sid2)
	sresp := s.CallAPI(air.APIHTTPExecute, sreq)
	sbody := s.CallAPI(air.APIHTTPRespBody, sresp)
	// Restaurant schedule (the second Table-2 transaction).
	screq := s.CallAPI(air.APIHTTPNewRequest, s.ConstStr("GET"))
	s.CallAPI(air.APIHTTPSetURL, screq, s.ConstStr("http://"+ddAPIHost+"/v2/schedule"))
	s.CallAPI(air.APIHTTPAddQuery, screq, s.ConstStr("store_id"), sid2)
	s.CallAPI(air.APIHTTPExecute, screq)
	// Menu keyed by the store response.
	menuID := s.CallAPI(air.APIJSONGet, sbody, s.ConstStr("store.menu_id"))
	mreq := s.CallAPI(air.APIHTTPNewRequest, s.ConstStr("GET"))
	s.CallAPI(air.APIHTTPSetURL, mreq, s.ConstStr("http://"+ddAPIHost+"/v2/menu"))
	s.CallAPI(air.APIHTTPAddQuery, mreq, s.ConstStr("menu_id"), menuID)
	mresp := s.CallAPI(air.APIHTTPExecute, mreq)
	mbody := s.CallAPI(air.APIHTTPRespBody, mresp)
	s.CallAPI(air.APIIntentPut, s.ConstStr("dd.menu"), mbody)
	s.CallAPI(air.APIUIRender, s.ConstStr("store"))
	s.Done()

	osel := store.Method("onSelectItem", 1)
	menu := osel.CallAPI(air.APIIntentGet, osel.ConstStr("dd.menu"))
	mids := osel.CallAPI(air.APIJSONGet, menu, osel.ConstStr("menu.items[*].id"))
	mid := osel.CallAPI(air.APIListGet, mids, osel.Param(0))
	osel.CallAPI(air.APIIntentPut, osel.ConstStr("dd.item"), mid)
	osel.Invoke("DDItem.open")
	osel.Done()

	item := pb.Class("DDItem", air.KindActivity)
	it := item.Method("open", 0)
	iid := it.CallAPI(air.APIIntentGet, it.ConstStr("dd.item"))
	ireq := it.CallAPI(air.APIHTTPNewRequest, it.ConstStr("GET"))
	it.CallAPI(air.APIHTTPSetURL, ireq, it.ConstStr("http://"+ddAPIHost+"/v2/item"))
	it.CallAPI(air.APIHTTPAddQuery, ireq, it.ConstStr("item_id"), iid)
	iresp := it.CallAPI(air.APIHTTPExecute, ireq)
	ibody := it.CallAPI(air.APIHTTPRespBody, iresp)
	// Suggestion keyed by the item response (Figure 11's last hop).
	sugID := it.CallAPI(air.APIJSONGet, ibody, it.ConstStr("item.suggest_key"))
	sgreq := it.CallAPI(air.APIHTTPNewRequest, it.ConstStr("GET"))
	it.CallAPI(air.APIHTTPSetURL, sgreq, it.ConstStr("http://"+ddAPIHost+"/v2/suggest"))
	it.CallAPI(air.APIHTTPAddQuery, sgreq, it.ConstStr("item_id"), sugID)
	it.CallAPI(air.APIHTTPExecute, sgreq)
	it.CallAPI(air.APIUIRender, it.ConstStr("item"))
	it.Done()

	buildDoorDashExtras(pb)

	prog := pb.MustBuild()
	a := &apk.APK{
		Manifest: apk.Manifest{
			Package:         "com.doordash.example",
			Label:           "DoorDash",
			Version:         "5.0.2",
			Category:        "Food delivery",
			LaunchHandler:   "DDMain.launch",
			LaunchScreen:    "stores",
			MainInteraction: "Loads a restaurant info.",
		},
		Screens: []apk.Screen{
			{Name: "stores", Widgets: []apk.Widget{
				{ID: "store", Kind: apk.ListItem, Handler: "DDMain.onSelectStore", MaxIndex: ddStoreN, Target: "store", Main: true},
			}},
			{Name: "store", Widgets: []apk.Widget{
				{ID: "menu-item", Kind: apk.ListItem, Handler: "DDStore.onSelectItem", MaxIndex: ddMenuN, Target: "item"},
				{ID: "back", Kind: apk.Back},
			}},
			{Name: "item", Widgets: []apk.Widget{{ID: "back", Kind: apk.Back}}},
		},
		Program: prog,
	}
	extraScreens, storesExtras := doorDashExtraScreens()
	a.Screens[0].Widgets = append(a.Screens[0].Widgets, storesExtras...)
	a.Screens = append(a.Screens, extraScreens...)
	a.Manifest.ServiceEntries = doorDashServiceEntries()
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return &App{
		Name:  "doordash",
		APK:   a,
		Hosts: []string{ddAPIHost, ddImgHost},
		HostRTT: map[string]time.Duration{
			ddAPIHost: 145 * time.Millisecond, // Table 2: menu & schedule
			ddImgHost: 145 * time.Millisecond,
		},
		RenderDelay: map[string]time.Duration{
			"stores": 3200 * time.Millisecond,
			"store":  600 * time.Millisecond,
			"item":   300 * time.Millisecond,
		},
		Handler:    doordashHandler,
		MainScreen: "stores",
		MainPath:   "/v2/store",
	}
}

func doordashHandler(scale float64) http.Handler {
	storeIDs := ids("dd-stores", ddStoreN)
	knownStore := map[string]bool{}
	for _, id := range storeIDs {
		knownStore[id] = true
	}
	menuItems := map[string][]string{}
	for _, sid := range storeIDs {
		menuItems["menu-"+sid] = ids("dd-menu-"+sid, ddMenuN)
	}
	knownItem := map[string]bool{}
	for _, items := range menuItems {
		for _, id := range items {
			knownItem[id] = true
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v2/stores", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(30*time.Millisecond, scale)
		stores := make([]any, len(storeIDs))
		for i, id := range storeIDs {
			stores[i] = map[string]any{"id": id, "name": "store-" + id}
		}
		w.Header().Set("Set-Cookie", "dsid=d"+storeIDs[0]+"; Path=/")
		writeJSON(w, map[string]any{"stores": stores, "filler": pad(2500)})
	})
	mux.HandleFunc("/v2/store", func(w http.ResponseWriter, r *http.Request) {
		sid := r.URL.Query().Get("store_id")
		if !knownStore[sid] {
			writeErr(w, http.StatusNotFound, "unknown store")
			return
		}
		sleepScaled(25*time.Millisecond, scale)
		writeJSON(w, map[string]any{"store": map[string]any{
			"id": sid, "menu_id": "menu-" + sid, "info": pad(5000),
		}})
	})
	mux.HandleFunc("/v2/schedule", func(w http.ResponseWriter, r *http.Request) {
		if !knownStore[r.URL.Query().Get("store_id")] {
			writeErr(w, http.StatusNotFound, "unknown store")
			return
		}
		sleepScaled(20*time.Millisecond, scale)
		writeJSON(w, map[string]any{"schedule": map[string]any{"open": "09:00", "close": "22:00", "filler": pad(1000)}})
	})
	mux.HandleFunc("/v2/menu", func(w http.ResponseWriter, r *http.Request) {
		mid := r.URL.Query().Get("menu_id")
		items, ok := menuItems[mid]
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown menu")
			return
		}
		sleepScaled(25*time.Millisecond, scale)
		out := make([]any, len(items))
		for i, id := range items {
			out[i] = map[string]any{"id": id, "name": "dish-" + id, "price": 995 + i}
		}
		writeJSON(w, map[string]any{"menu": map[string]any{"id": mid, "items": out, "filler": pad(4000)}})
	})
	mux.HandleFunc("/v2/item", func(w http.ResponseWriter, r *http.Request) {
		iid := r.URL.Query().Get("item_id")
		if !knownItem[iid] {
			writeErr(w, http.StatusNotFound, "unknown item")
			return
		}
		sleepScaled(20*time.Millisecond, scale)
		writeJSON(w, map[string]any{"item": map[string]any{
			"id": iid, "suggest_key": iid, "desc": pad(3000),
		}})
	})
	mux.HandleFunc("/v2/suggest", func(w http.ResponseWriter, r *http.Request) {
		if !knownItem[r.URL.Query().Get("item_id")] {
			writeErr(w, http.StatusNotFound, "unknown item")
			return
		}
		sleepScaled(20*time.Millisecond, scale)
		writeJSON(w, map[string]any{"suggestions": []any{"fries", "soda"}, "filler": pad(1500)})
	})
	mux.HandleFunc("/simg", func(w http.ResponseWriter, r *http.Request) {
		sid := r.URL.Query().Get("sid")
		if sid == "" {
			writeErr(w, http.StatusBadRequest, "missing sid")
			return
		}
		writeImage(w, "dd-simg-"+sid, 80*1000)
	})
	registerDoorDashExtraRoutes(mux, scale, storeIDs)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "doordash: no route "+r.URL.Path)
	})
	return mux
}
