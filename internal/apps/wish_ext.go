package apps

import (
	"net/http"
	"time"

	"appx/internal/air"
	"appx/internal/apk"
)

// Wish secondary surfaces: search, account/order history, background push
// handling, and cart. Commercial apps carry many interaction surfaces beyond
// the main flow; these give the Table-3 comparison its teeth — the
// notification/sync entry points in particular are invisible to UI fuzzing
// ("some requests are not triggered by user events", §6.1) while static
// analysis extracts their signatures and dependencies.

// buildWishExtras adds the secondary classes to the program.
func buildWishExtras(pb *air.ProgramBuilder) {
	search := pb.Class("WishSearch", air.KindActivity)

	// open: fetch trending suggestions.
	so := search.Method("open", 0)
	sreq := so.CallAPI(air.APIHTTPNewRequest, so.ConstStr("GET"))
	so.CallAPI(air.APIHTTPSetURL, sreq, so.ConstStr("http://"+wishAPIHost+"/api/search/suggest"))
	so.CallAPI(air.APIHTTPAddHeader, sreq, so.ConstStr("User-Agent"), so.CallAPI(air.APIDeviceUserAgent))
	sresp := so.CallAPI(air.APIHTTPExecute, sreq)
	sbody := so.CallAPI(air.APIHTTPRespBody, sresp)
	so.CallAPI(air.APIIntentPut, so.ConstStr("wish.suggest"), sbody)
	so.CallAPI(air.APIUIRender, so.ConstStr("search"))
	so.Done()

	// onPick: run the query for the chosen suggestion; thumbnails fan out.
	op := search.Method("onPick", 1)
	sug := op.CallAPI(air.APIIntentGet, op.ConstStr("wish.suggest"))
	qs := op.CallAPI(air.APIJSONGet, sug, op.ConstStr("suggestions[*].q"))
	q := op.CallAPI(air.APIListGet, qs, op.Param(0))
	qreq := op.CallAPI(air.APIHTTPNewRequest, op.ConstStr("GET"))
	op.CallAPI(air.APIHTTPSetURL, qreq, op.ConstStr("http://"+wishAPIHost+"/api/search"))
	op.CallAPI(air.APIHTTPAddQuery, qreq, op.ConstStr("q"), q)
	op.CallAPI(air.APIHTTPAddQuery, qreq, op.ConstStr("_ver"), op.CallAPI(air.APIDeviceVersion))
	qresp := op.CallAPI(air.APIHTTPExecute, qreq)
	qbody := op.CallAPI(air.APIHTTPRespBody, qresp)
	op.CallAPI(air.APIIntentPut, op.ConstStr("wish.results"), qbody)
	rids := op.CallAPI(air.APIJSONGet, qbody, op.ConstStr("results[*].id"))
	op.ForEach(rids, "WishMain.loadThumb")
	op.CallAPI(air.APIUIRender, op.ConstStr("results"))
	op.Done()

	// onSelectResult: hand the result id to the shared detail activity.
	osr := search.Method("onSelectResult", 1)
	res := osr.CallAPI(air.APIIntentGet, osr.ConstStr("wish.results"))
	ids := osr.CallAPI(air.APIJSONGet, res, osr.ConstStr("results[*].id"))
	rid := osr.CallAPI(air.APIListGet, ids, osr.Param(0))
	osr.CallAPI(air.APIIntentPut, osr.ConstStr("wish.sel"), rid)
	osr.Invoke("WishDetail.open")
	osr.Done()

	acct := pb.Class("WishAccount", air.KindActivity)

	// open: profile → order list, keyed by the user id from the profile.
	ao := acct.Method("open", 0)
	mreq := ao.CallAPI(air.APIHTTPNewRequest, ao.ConstStr("GET"))
	ao.CallAPI(air.APIHTTPSetURL, mreq, ao.ConstStr("http://"+wishAPIHost+"/api/user/me"))
	ao.CallAPI(air.APIHTTPAddHeader, mreq, ao.ConstStr("Cookie"), ao.CallAPI(air.APIDeviceCookie, ao.ConstStr(wishAPIHost)))
	mresp := ao.CallAPI(air.APIHTTPExecute, mreq)
	mbody := ao.CallAPI(air.APIHTTPRespBody, mresp)
	uid := ao.CallAPI(air.APIJSONGet, mbody, ao.ConstStr("user.id"))
	oreq := ao.CallAPI(air.APIHTTPNewRequest, ao.ConstStr("GET"))
	ao.CallAPI(air.APIHTTPSetURL, oreq, ao.ConstStr("http://"+wishAPIHost+"/api/user/orders"))
	ao.CallAPI(air.APIHTTPAddQuery, oreq, ao.ConstStr("uid"), uid)
	oresp := ao.CallAPI(air.APIHTTPExecute, oreq)
	obody := ao.CallAPI(air.APIHTTPRespBody, oresp)
	ao.CallAPI(air.APIIntentPut, ao.ConstStr("wish.orders"), obody)
	ao.CallAPI(air.APIUIRender, ao.ConstStr("account"))
	ao.Done()

	// onSelectOrder: order detail → tracking status (a further chain hop).
	oso := acct.Method("onSelectOrder", 1)
	orders := oso.CallAPI(air.APIIntentGet, oso.ConstStr("wish.orders"))
	oids := oso.CallAPI(air.APIJSONGet, orders, oso.ConstStr("orders[*].id"))
	oid := oso.CallAPI(air.APIListGet, oids, oso.Param(0))
	dreq := oso.CallAPI(air.APIHTTPNewRequest, oso.ConstStr("GET"))
	oso.CallAPI(air.APIHTTPSetURL, dreq, oso.ConstStr("http://"+wishAPIHost+"/api/order"))
	oso.CallAPI(air.APIHTTPAddQuery, dreq, oso.ConstStr("oid"), oid)
	dresp := oso.CallAPI(air.APIHTTPExecute, dreq)
	dbody := oso.CallAPI(air.APIHTTPRespBody, dresp)
	tid := oso.CallAPI(air.APIJSONGet, dbody, oso.ConstStr("order.tracking_id"))
	treq := oso.CallAPI(air.APIHTTPNewRequest, oso.ConstStr("GET"))
	oso.CallAPI(air.APIHTTPSetURL, treq, oso.ConstStr("http://"+wishAPIHost+"/api/order/track"))
	oso.CallAPI(air.APIHTTPAddQuery, treq, oso.ConstStr("tid"), tid)
	oso.CallAPI(air.APIHTTPExecute, treq)
	oso.CallAPI(air.APIUIRender, oso.ConstStr("order"))
	oso.Done()

	cart := pb.Class("WishCart", air.KindActivity)
	ca := cart.Method("add", 0)
	cid := ca.CallAPI(air.APIIntentGet, ca.ConstStr("wish.sel"))
	creq := ca.CallAPI(air.APIHTTPNewRequest, ca.ConstStr("POST"))
	ca.CallAPI(air.APIHTTPSetURL, creq, ca.ConstStr("http://"+wishAPIHost+"/cart/add"))
	ca.CallAPI(air.APIHTTPAddHeader, creq, ca.ConstStr("Cookie"), ca.CallAPI(air.APIDeviceCookie, ca.ConstStr(wishAPIHost)))
	ca.CallAPI(air.APIHTTPSetBodyField, creq, ca.ConstStr("cid"), cid)
	ca.CallAPI(air.APIHTTPSetBodyField, creq, ca.ConstStr("_client"), ca.ConstStr("android"))
	ca.CallAPI(air.APIHTTPExecute, creq)
	ca.CallAPI(air.APIUIRender, ca.ConstStr("detail"))
	ca.Done()

	// Background service: push notifications fetch an update list and then
	// per-product notes — UI fuzzing can never trigger these.
	notify := pb.Class("WishNotify", air.KindService)
	np := notify.Method("onPush", 0)
	nreq := np.CallAPI(air.APIHTTPNewRequest, np.ConstStr("GET"))
	np.CallAPI(air.APIHTTPSetURL, nreq, np.ConstStr("http://"+wishAPIHost+"/api/notifications"))
	np.CallAPI(air.APIHTTPAddHeader, nreq, np.ConstStr("Cookie"), np.CallAPI(air.APIDeviceCookie, np.ConstStr(wishAPIHost)))
	nresp := np.CallAPI(air.APIHTTPExecute, nreq)
	nbody := np.CallAPI(air.APIHTTPRespBody, nresp)
	nids := np.CallAPI(air.APIJSONGet, nbody, np.ConstStr("notes[*].product_id"))
	np.ForEach(nids, "WishNotify.loadNote")
	np.Done()

	ln := notify.Method("loadNote", 1)
	lreq := ln.CallAPI(air.APIHTTPNewRequest, ln.ConstStr("GET"))
	ln.CallAPI(air.APIHTTPSetURL, lreq, ln.ConstStr("http://"+wishAPIHost+"/api/note"))
	ln.CallAPI(air.APIHTTPAddQuery, lreq, ln.ConstStr("id"), ln.Param(0))
	ln.CallAPI(air.APIHTTPExecute, lreq)
	ln.Done()

	ns := notify.Method("onSync", 0)
	syreq := ns.CallAPI(air.APIHTTPNewRequest, ns.ConstStr("POST"))
	ns.CallAPI(air.APIHTTPSetURL, syreq, ns.ConstStr("http://"+wishAPIHost+"/api/metrics"))
	ns.CallAPI(air.APIHTTPSetBodyField, syreq, ns.ConstStr("_client"), ns.ConstStr("android"))
	ns.CallAPI(air.APIHTTPSetBodyField, syreq, ns.ConstStr("_ver"), ns.CallAPI(air.APIDeviceVersion))
	ns.CallAPI(air.APIHTTPSetBodyField, syreq, ns.ConstStr("locale"), ns.CallAPI(air.APIDeviceLocale))
	ns.CallAPI(air.APIHTTPExecute, syreq)
	ns.Done()
}

// wishExtraScreens returns the secondary screens and the widgets grafted
// onto existing ones.
func wishExtraScreens() (extra []apk.Screen, feedWidgets, detailWidgets []apk.Widget) {
	extra = []apk.Screen{
		{Name: "search", Widgets: []apk.Widget{
			{ID: "suggestion", Kind: apk.ListItem, Handler: "WishSearch.onPick", MaxIndex: 5, Target: "results"},
			{ID: "back", Kind: apk.Back},
		}},
		{Name: "results", Widgets: []apk.Widget{
			{ID: "result", Kind: apk.ListItem, Handler: "WishSearch.onSelectResult", MaxIndex: 10, Target: "detail"},
			{ID: "back", Kind: apk.Back},
		}},
		{Name: "account", Widgets: []apk.Widget{
			{ID: "order", Kind: apk.ListItem, Handler: "WishAccount.onSelectOrder", MaxIndex: 5, Target: "order"},
			{ID: "back", Kind: apk.Back},
		}},
		{Name: "order", Widgets: []apk.Widget{
			{ID: "back", Kind: apk.Back},
		}},
	}
	feedWidgets = []apk.Widget{
		{ID: "search", Kind: apk.Button, Handler: "WishSearch.open", Target: "search"},
		{ID: "account", Kind: apk.Button, Handler: "WishAccount.open", Target: "account"},
	}
	detailWidgets = []apk.Widget{
		{ID: "add-to-cart", Kind: apk.Button, Handler: "WishCart.add"},
	}
	return
}

// wishServiceEntries lists the background entry points.
func wishServiceEntries() []string {
	return []string{"WishNotify.onPush", "WishNotify.onSync"}
}

// registerWishExtraRoutes adds the secondary-API handlers to the origin.
func registerWishExtraRoutes(mux *http.ServeMux, scale float64, feedIDs []string) {
	queries := []string{"trending-0", "trending-1", "trending-2", "trending-3", "trending-4"}
	orderIDs := ids("wish-orders", 5)
	knownOrder := map[string]bool{}
	for _, id := range orderIDs {
		knownOrder[id] = true
	}

	mux.HandleFunc("/api/search/suggest", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(15*time.Millisecond, scale)
		sug := make([]any, len(queries))
		for i, q := range queries {
			sug[i] = map[string]any{"q": q}
		}
		writeJSON(w, map[string]any{"suggestions": sug})
	})
	mux.HandleFunc("/api/search", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("q") == "" {
			writeErr(w, http.StatusBadRequest, "missing q")
			return
		}
		sleepScaled(35*time.Millisecond, scale)
		// Deterministic result subset of the catalog.
		results := make([]any, 0, 10)
		for i, id := range feedIDs {
			if i%3 == 0 && len(results) < 10 {
				results = append(results, map[string]any{"id": id})
			}
		}
		writeJSON(w, map[string]any{"results": results, "filler": pad(1500)})
	})
	mux.HandleFunc("/api/user/me", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(20*time.Millisecond, scale)
		writeJSON(w, map[string]any{"user": map[string]any{"id": "u-" + feedIDs[0], "tier": "premium"}})
	})
	mux.HandleFunc("/api/user/orders", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("uid") == "" {
			writeErr(w, http.StatusBadRequest, "missing uid")
			return
		}
		sleepScaled(25*time.Millisecond, scale)
		orders := make([]any, len(orderIDs))
		for i, id := range orderIDs {
			orders[i] = map[string]any{"id": id, "total": 1999 + i}
		}
		writeJSON(w, map[string]any{"orders": orders})
	})
	mux.HandleFunc("/api/order", func(w http.ResponseWriter, r *http.Request) {
		oid := r.URL.Query().Get("oid")
		if !knownOrder[oid] {
			writeErr(w, http.StatusNotFound, "unknown order")
			return
		}
		sleepScaled(20*time.Millisecond, scale)
		writeJSON(w, map[string]any{"order": map[string]any{
			"id": oid, "tracking_id": "trk-" + oid, "items": pad(1200),
		}})
	})
	mux.HandleFunc("/api/order/track", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("tid") == "" {
			writeErr(w, http.StatusBadRequest, "missing tid")
			return
		}
		sleepScaled(20*time.Millisecond, scale)
		writeJSON(w, map[string]any{"tracking": map[string]any{"status": "in-transit", "eta": "2d"}})
	})
	mux.HandleFunc("/api/notifications", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(15*time.Millisecond, scale)
		notes := []any{
			map[string]any{"product_id": feedIDs[0], "kind": "price-drop"},
			map[string]any{"product_id": feedIDs[1], "kind": "restock"},
		}
		writeJSON(w, map[string]any{"notes": notes})
	})
	mux.HandleFunc("/api/note", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("id") == "" {
			writeErr(w, http.StatusBadRequest, "missing id")
			return
		}
		sleepScaled(10*time.Millisecond, scale)
		writeJSON(w, map[string]any{"note": map[string]any{"body": pad(600)}})
	})
	mux.HandleFunc("/api/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"ok": true})
	})
	mux.HandleFunc("/cart/add", func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm()
		if r.PostFormValue("cid") == "" {
			writeErr(w, http.StatusBadRequest, "missing cid")
			return
		}
		sleepScaled(15*time.Millisecond, scale)
		writeJSON(w, map[string]any{"cart": map[string]any{"count": 1}})
	})
}
