package apps

import (
	"net/http"
	"time"

	"appx/internal/air"
	"appx/internal/apk"
)

const (
	geekAPIHost = "api.geek.example"
	geekImgHost = "img.geek.example"
	geekFeedN   = 24
)

// Geek builds the Geek-like shopping app (Wish's sister app in the paper's
// evaluation). Its feed is fetched through an Rx defer/map pipeline, and the
// item detail again carries a large product image (~315 KB, §6.2).
func Geek() *App {
	pb := air.NewProgramBuilder()
	main := pb.Class("GeekMain", air.KindActivity)

	fetch := main.Method("fetchFeed", 0)
	freq := fetch.CallAPI(air.APIHTTPNewRequest, fetch.ConstStr("POST"))
	fetch.CallAPI(air.APIHTTPSetURL, freq, fetch.ConstStr("http://"+geekAPIHost+"/api/feed"))
	fetch.CallAPI(air.APIHTTPAddHeader, freq, fetch.ConstStr("User-Agent"), fetch.CallAPI(air.APIDeviceUserAgent))
	fetch.CallAPI(air.APIHTTPSetBodyField, freq, fetch.ConstStr("count"), fetch.ConstStr("24"))
	fetch.CallAPI(air.APIHTTPSetBodyField, freq, fetch.ConstStr("_ver"), fetch.CallAPI(air.APIDeviceVersion))
	fresp := fetch.CallAPI(air.APIHTTPExecute, freq)
	fbody := fetch.CallAPI(air.APIHTTPRespBody, fresp)
	fetch.Return(fbody)
	fetch.Done()

	onFeed := main.Method("onFeed", 1)
	onFeed.CallAPI(air.APIIntentPut, onFeed.ConstStr("geek.feed"), onFeed.Param(0))
	fids := onFeed.CallAPI(air.APIJSONGet, onFeed.Param(0), onFeed.ConstStr("feed.items[*].id"))
	onFeed.ForEach(fids, "GeekMain.loadThumb")
	onFeed.CallAPI(air.APIUIRender, onFeed.ConstStr("feed"))
	onFeed.Done()

	m := main.Method("launch", 0)
	obs := m.CallAPI(air.APIRxDefer, m.ConstStr("GeekMain.fetchFeed"))
	m.CallAPI(air.APIRxSubscribe, obs, m.ConstStr("GeekMain.onFeed"))
	m.Done()

	th := main.Method("loadThumb", 1)
	treq := th.CallAPI(air.APIHTTPNewRequest, th.ConstStr("GET"))
	th.CallAPI(air.APIHTTPSetURL, treq, th.StrConcat("http://"+geekImgHost+"/thumb?item=", th.Param(0)))
	tresp := th.CallAPI(air.APIHTTPExecute, treq)
	th.CallAPI(air.APIUIShowImage, tresp)
	th.Done()

	sel := main.Method("onSelectItem", 1)
	feed := sel.CallAPI(air.APIIntentGet, sel.ConstStr("geek.feed"))
	sids := sel.CallAPI(air.APIJSONGet, feed, sel.ConstStr("feed.items[*].id"))
	sid := sel.CallAPI(air.APIListGet, sids, sel.Param(0))
	sel.CallAPI(air.APIIntentPut, sel.ConstStr("geek.sel"), sid)
	sel.Invoke("GeekDetail.open")
	sel.Done()

	det := pb.Class("GeekDetail", air.KindActivity)
	d := det.Method("open", 0)
	id := d.CallAPI(air.APIIntentGet, d.ConstStr("geek.sel"))
	dreq := d.CallAPI(air.APIHTTPNewRequest, d.ConstStr("POST"))
	d.CallAPI(air.APIHTTPSetURL, dreq, d.ConstStr("http://"+geekAPIHost+"/api/item/get"))
	d.CallAPI(air.APIHTTPAddHeader, dreq, d.ConstStr("Cookie"), d.CallAPI(air.APIDeviceCookie, d.ConstStr(geekAPIHost)))
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("item_id"), id)
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("_app"), d.ConstStr("geek"))
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("_ver"), d.CallAPI(air.APIDeviceVersion))
	dresp := d.CallAPI(air.APIHTTPExecute, dreq)
	dbody := d.CallAPI(air.APIHTTPRespBody, dresp)
	iurl := d.CallAPI(air.APIJSONGet, dbody, d.ConstStr("item.image"))
	ireq := d.CallAPI(air.APIHTTPNewRequest, d.ConstStr("GET"))
	d.CallAPI(air.APIHTTPSetURL, ireq, iurl)
	iresp := d.CallAPI(air.APIHTTPExecute, ireq)
	d.CallAPI(air.APIUIShowImage, iresp)
	rreq := d.CallAPI(air.APIHTTPNewRequest, d.ConstStr("POST"))
	d.CallAPI(air.APIHTTPSetURL, rreq, d.ConstStr("http://"+geekAPIHost+"/api/item/related"))
	d.CallAPI(air.APIHTTPSetBodyField, rreq, d.ConstStr("item_id"), id)
	d.CallAPI(air.APIHTTPExecute, rreq)
	d.CallAPI(air.APIUIRender, d.ConstStr("detail"))
	d.Done()

	buildGeekExtras(pb)

	prog := pb.MustBuild()
	a := &apk.APK{
		Manifest: apk.Manifest{
			Package:         "com.geek.example",
			Label:           "Geek",
			Version:         "2.3.1",
			Category:        "Shopping",
			LaunchHandler:   "GeekMain.launch",
			LaunchScreen:    "feed",
			MainInteraction: "Loads an item detail",
		},
		Screens: []apk.Screen{
			{Name: "feed", Widgets: []apk.Widget{
				{ID: "item", Kind: apk.ListItem, Handler: "GeekMain.onSelectItem", MaxIndex: geekFeedN, Target: "detail", Main: true},
			}},
			{Name: "detail", Widgets: []apk.Widget{{ID: "back", Kind: apk.Back}}},
		},
		Program: prog,
	}
	extraScreens, feedExtras, detailExtras := geekExtraScreens()
	a.Screens[0].Widgets = append(a.Screens[0].Widgets, feedExtras...)
	a.Screens[1].Widgets = append(a.Screens[1].Widgets, detailExtras...)
	a.Screens = append(a.Screens, extraScreens...)
	a.Manifest.ServiceEntries = geekServiceEntries()
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return &App{
		Name:  "geek",
		APK:   a,
		Hosts: []string{geekAPIHost, geekImgHost},
		HostRTT: map[string]time.Duration{
			geekAPIHost: 165 * time.Millisecond,
			geekImgHost: 6 * time.Millisecond,
		},
		RenderDelay: map[string]time.Duration{
			"feed":   1600 * time.Millisecond,
			"detail": 450 * time.Millisecond,
		},
		Handler:    geekHandler,
		MainScreen: "feed",
		MainPath:   "/api/item/get",
	}
}

func geekHandler(scale float64) http.Handler {
	feedIDs := ids("geek-feed", geekFeedN)
	known := map[string]bool{}
	for _, id := range feedIDs {
		known[id] = true
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/feed", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		sleepScaled(25*time.Millisecond, scale)
		items := make([]any, len(feedIDs))
		for i, id := range feedIDs {
			items[i] = map[string]any{"id": id, "name": "deal-" + id}
		}
		w.Header().Set("Set-Cookie", "gsid=g"+feedIDs[0]+"; Path=/")
		writeJSON(w, map[string]any{"feed": map[string]any{"items": items, "filler": pad(1500)}})
	})
	mux.HandleFunc("/api/item/get", func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm()
		id := r.PostFormValue("item_id")
		if id == "" || !known[id] {
			writeErr(w, http.StatusNotFound, "unknown item")
			return
		}
		sleepScaled(30*time.Millisecond, scale)
		writeJSON(w, map[string]any{"item": map[string]any{
			"id":    id,
			"image": "http://" + geekImgHost + "/full?item=" + id,
			"desc":  pad(9000),
		}})
	})
	mux.HandleFunc("/api/item/related", func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm()
		if r.PostFormValue("item_id") == "" {
			writeErr(w, http.StatusBadRequest, "missing item_id")
			return
		}
		sleepScaled(20*time.Millisecond, scale)
		writeJSON(w, map[string]any{"related": []any{feedIDs[0], feedIDs[1], feedIDs[2]}, "filler": pad(3000)})
	})
	mux.HandleFunc("/thumb", func(w http.ResponseWriter, r *http.Request) {
		item := r.URL.Query().Get("item")
		if item == "" {
			writeErr(w, http.StatusBadRequest, "missing item")
			return
		}
		writeImage(w, "geek-thumb-"+item, 35*1000)
	})
	mux.HandleFunc("/full", func(w http.ResponseWriter, r *http.Request) {
		item := r.URL.Query().Get("item")
		if item == "" || !known[item] {
			writeErr(w, http.StatusNotFound, "unknown item")
			return
		}
		writeImage(w, "geek-full-"+item, 315*1000)
	})
	registerGeekExtraRoutes(mux, scale, feedIDs)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "geek: no route "+r.URL.Path)
	})
	return mux
}
