package apps

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// ids returns n deterministic hex item identifiers for a namespace. The same
// namespace always yields the same ids, so replayed traces and prefetched
// requests agree with live server state.
func ids(namespace string, n int) []string {
	out := make([]string, n)
	h := uint64(1469598103934665603) // FNV offset basis
	for _, c := range []byte(namespace) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for i := range out {
		h = h*6364136223846793005 + 1442695040888963407
		out[i] = fmt.Sprintf("%06x", (h>>20)&0xffffff)
	}
	return out
}

// imageBytes produces a deterministic pseudo-image payload of the given size.
func imageBytes(seed string, size int) []byte {
	b := make([]byte, size)
	h := byte(7)
	for _, c := range []byte(seed) {
		h = h*31 + c
	}
	for i := range b {
		h = h*131 + 11
		b[i] = h
	}
	return b
}

// writeJSON writes v as an application/json response.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// writeImage writes an image payload.
func writeImage(w http.ResponseWriter, seed string, size int) {
	w.Header().Set("Content-Type", "image/jpeg")
	w.WriteHeader(http.StatusOK)
	w.Write(imageBytes(seed, size))
}

// writeErr writes a JSON error with the given status.
func writeErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": msg})
}

// pad returns filler text of roughly n bytes, to give JSON payloads
// realistic sizes.
func pad(n int) string {
	return strings.Repeat("loremipsum", n/10+1)[:n]
}

// hostOf strips an optional port from a request host.
func hostOf(r *http.Request) string {
	h := r.Host
	if i := strings.LastIndexByte(h, ':'); i > 0 && !strings.Contains(h[i+1:], "]") {
		return h[:i]
	}
	return h
}
