package apps

import (
	"net/http"
	"time"

	"appx/internal/air"
	"appx/internal/apk"
)

const (
	pmAPIHost = "api.postmates.example"
	pmImgHost = "img.postmates.example"
	pmFeedN   = 8
)

// Postmates builds the second food-delivery app. Its origin is very close
// (5 ms RTT, Table 2); launch loads a small feed plus large restaurant
// images (~168 KB each, §6.2), while the main interaction loads the small
// (~7 KB) restaurant menu & info — which is why the paper measures only an
// 8 % data-usage overhead for it.
func Postmates() *App {
	pb := air.NewProgramBuilder()
	main := pb.Class("PMMain", air.KindActivity)

	m := main.Method("launch", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://"+pmAPIHost+"/api/feed"))
	m.CallAPI(air.APIHTTPAddHeader, req, m.ConstStr("User-Agent"), m.CallAPI(air.APIDeviceUserAgent))
	m.CallAPI(air.APIHTTPAddQuery, req, m.ConstStr("locale"), m.CallAPI(air.APIDeviceLocale))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	m.CallAPI(air.APIIntentPut, m.ConstStr("pm.feed"), body)
	rids := m.CallAPI(air.APIJSONGet, body, m.ConstStr("feed[*].id"))
	m.ForEach(rids, "PMMain.loadRestImage")
	m.CallAPI(air.APIUIRender, m.ConstStr("feed"))
	m.Done()

	li := main.Method("loadRestImage", 1)
	lreq := li.CallAPI(air.APIHTTPNewRequest, li.ConstStr("GET"))
	li.CallAPI(air.APIHTTPSetURL, lreq, li.StrConcat("http://"+pmImgHost+"/rimg?rid=", li.Param(0)))
	lresp := li.CallAPI(air.APIHTTPExecute, lreq)
	li.CallAPI(air.APIUIShowImage, lresp)
	li.Done()

	sel := main.Method("onSelectRestaurant", 1)
	feed := sel.CallAPI(air.APIIntentGet, sel.ConstStr("pm.feed"))
	ids := sel.CallAPI(air.APIJSONGet, feed, sel.ConstStr("feed[*].id"))
	rid := sel.CallAPI(air.APIListGet, ids, sel.Param(0))
	sel.CallAPI(air.APIIntentPut, sel.ConstStr("pm.sel"), rid)
	sel.Invoke("PMRest.open")
	sel.Done()

	rest := pb.Class("PMRest", air.KindActivity)
	r := rest.Method("open", 0)
	rid2 := r.CallAPI(air.APIIntentGet, r.ConstStr("pm.sel"))
	rreq := r.CallAPI(air.APIHTTPNewRequest, r.ConstStr("GET"))
	r.CallAPI(air.APIHTTPSetURL, rreq, r.ConstStr("http://"+pmAPIHost+"/api/restaurant"))
	r.CallAPI(air.APIHTTPAddQuery, rreq, r.ConstStr("rid"), rid2)
	r.CallAPI(air.APIHTTPAddHeader, rreq, r.ConstStr("Cookie"), r.CallAPI(air.APIDeviceCookie, r.ConstStr(pmAPIHost)))
	r.CallAPI(air.APIHTTPExecute, rreq)
	hreq := r.CallAPI(air.APIHTTPNewRequest, r.ConstStr("GET"))
	r.CallAPI(air.APIHTTPSetURL, hreq, r.ConstStr("http://"+pmAPIHost+"/api/hours"))
	r.CallAPI(air.APIHTTPAddQuery, hreq, r.ConstStr("rid"), rid2)
	r.CallAPI(air.APIHTTPExecute, hreq)
	r.CallAPI(air.APIUIRender, r.ConstStr("restaurant"))
	r.Done()

	buildPostmatesExtras(pb)

	prog := pb.MustBuild()
	a := &apk.APK{
		Manifest: apk.Manifest{
			Package:         "com.postmates.example",
			Label:           "Postmates",
			Version:         "6.2.0",
			Category:        "Food delivery",
			LaunchHandler:   "PMMain.launch",
			LaunchScreen:    "feed",
			MainInteraction: "Loads a restaurant info.",
		},
		Screens: []apk.Screen{
			{Name: "feed", Widgets: []apk.Widget{
				{ID: "restaurant", Kind: apk.ListItem, Handler: "PMMain.onSelectRestaurant", MaxIndex: pmFeedN, Target: "restaurant", Main: true},
			}},
			{Name: "restaurant", Widgets: []apk.Widget{{ID: "back", Kind: apk.Back}}},
		},
		Program: prog,
	}
	extraScreens, feedExtras := postmatesExtraScreens()
	a.Screens[0].Widgets = append(a.Screens[0].Widgets, feedExtras...)
	a.Screens = append(a.Screens, extraScreens...)
	a.Manifest.ServiceEntries = postmatesServiceEntries()
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return &App{
		Name:  "postmates",
		APK:   a,
		Hosts: []string{pmAPIHost, pmImgHost},
		HostRTT: map[string]time.Duration{
			pmAPIHost: 5 * time.Millisecond, // Table 2
			pmImgHost: 5 * time.Millisecond,
		},
		RenderDelay: map[string]time.Duration{
			"feed":       2100 * time.Millisecond,
			"restaurant": 350 * time.Millisecond,
		},
		Handler:    postmatesHandler,
		MainScreen: "feed",
		MainPath:   "/api/restaurant",
	}
}

func postmatesHandler(scale float64) http.Handler {
	restIDs := ids("pm-feed", pmFeedN)
	known := map[string]bool{}
	for _, id := range restIDs {
		known[id] = true
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/feed", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(150*time.Millisecond, scale)
		feed := make([]any, len(restIDs))
		for i, id := range restIDs {
			feed[i] = map[string]any{"id": id, "name": "resto-" + id}
		}
		w.Header().Set("Set-Cookie", "pmsid=m"+restIDs[0]+"; Path=/")
		writeJSON(w, map[string]any{"feed": feed, "filler": pad(1200)})
	})
	mux.HandleFunc("/api/restaurant", func(w http.ResponseWriter, r *http.Request) {
		rid := r.URL.Query().Get("rid")
		if !known[rid] {
			writeErr(w, http.StatusNotFound, "unknown restaurant")
			return
		}
		// The Postmates origin is close (5 ms RTT) but slow: the latency the
		// paper measures here is server time, the §2 "remote server itself
		// is slow" case that prefetching also hides.
		sleepScaled(300*time.Millisecond, scale)
		// Menu & info: ~7 KB (§6.2).
		writeJSON(w, map[string]any{"restaurant": map[string]any{
			"id": rid, "menu": pad(7000),
		}})
	})
	mux.HandleFunc("/api/hours", func(w http.ResponseWriter, r *http.Request) {
		if !known[r.URL.Query().Get("rid")] {
			writeErr(w, http.StatusNotFound, "unknown restaurant")
			return
		}
		sleepScaled(200*time.Millisecond, scale)
		writeJSON(w, map[string]any{"hours": map[string]any{"open": "10:00", "close": "23:00"}})
	})
	mux.HandleFunc("/rimg", func(w http.ResponseWriter, r *http.Request) {
		rid := r.URL.Query().Get("rid")
		if rid == "" {
			writeErr(w, http.StatusBadRequest, "missing rid")
			return
		}
		// Restaurant image: ~168 KB (§6.2).
		writeImage(w, "pm-rimg-"+rid, 168*1000)
	})
	registerPostmatesExtraRoutes(mux, scale, restIDs)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "postmates: no route "+r.URL.Path)
	})
	return mux
}
