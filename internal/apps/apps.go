// Package apps contains the five synthetic commercial applications the
// evaluation runs against, modelled transaction-for-transaction on the apps
// in the paper (Table 1): Wish and Geek (shopping), DoorDash and Postmates
// (food delivery), and Purple Ocean (psychic reading).
//
// Each App bundles:
//
//   - an APK (AIR program + UI model) exhibiting the dependency structures
//     §2 and §6.1 of the paper describe — feed→thumbnail fan-out, item
//     detail with branch-conditional body fields, Intent-passed selections,
//     Rx pipelines, and successive request chains;
//   - an origin-server implementation of the app's REST API producing
//     deterministic content with the paper's payload sizes (§6.2: product
//     images ~315 KB for Wish/Geek, restaurant images ~168 KB vs ~7 KB
//     menus for Postmates);
//   - the evaluation parameters of Tables 1 and 2: per-host proxy↔origin
//     RTTs and the per-screen client processing (render) delays backed out
//     of Figures 13 and 14.
package apps

import (
	"net/http"
	"time"

	"appx/internal/apk"
)

// App is one synthetic application plus its evaluation parameters.
type App struct {
	// Name is the short app identifier ("wish", "geek", ...).
	Name string
	// APK is the packaged application.
	APK *apk.APK
	// Hosts lists every origin hostname the app contacts.
	Hosts []string
	// HostRTT is the proxy↔origin round-trip time per host at time scale 1
	// (Table 2 of the paper).
	HostRTT map[string]time.Duration
	// RenderDelay is the client-side processing delay charged when a screen
	// renders (the "processing delay" slice of Figures 13/14), at scale 1.
	RenderDelay map[string]time.Duration
	// Handler constructs the app's origin server. The scale factor
	// compresses server-side processing sleeps together with the rest of
	// the emulation.
	Handler func(scale float64) http.Handler
	// MainScreen/MainWidget identify the paper's "main interaction"
	// (Table 1); duplicated from the APK for convenience.
	MainScreen string
	// MainPath is the URI path of the main interaction's primary
	// transaction, used by experiment reporting.
	MainPath string
}

// All returns the five evaluation apps in the paper's order.
func All() []*App {
	return []*App{Wish(), Geek(), DoorDash(), PurpleOcean(), Postmates()}
}

// ByName returns the named app or nil.
func ByName(name string) *App {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// sleepScaled sleeps d scaled by the emulation factor.
func sleepScaled(d time.Duration, scale float64) {
	if d <= 0 || scale <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * scale))
}
