package apps

import (
	"net/http"
	"time"

	"appx/internal/air"
	"appx/internal/apk"
)

const (
	poAPIHost  = "api.purpleocean.example"
	poImgHost  = "img.purpleocean.example"
	poAdvisorN = 12
)

// PurpleOcean builds the psychic-reading app. Its origin server sits far
// away (230 ms RTT, Table 2 — "Purple Ocean benefits the most in terms of
// network delay because their servers are located far away", §6.2). The main
// interaction loads an advisor page: advisor info (through an Rx pipeline),
// a profile image, and a video still image — the three Table-2 transactions.
func PurpleOcean() *App {
	pb := air.NewProgramBuilder()
	main := pb.Class("POMain", air.KindActivity)

	m := main.Method("launch", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://"+poAPIHost+"/api/advisors"))
	m.CallAPI(air.APIHTTPAddHeader, req, m.ConstStr("User-Agent"), m.CallAPI(air.APIDeviceUserAgent))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	m.CallAPI(air.APIIntentPut, m.ConstStr("po.advisors"), body)
	aids := m.CallAPI(air.APIJSONGet, body, m.ConstStr("advisors[*].id"))
	m.ForEach(aids, "POMain.loadThumb")
	m.CallAPI(air.APIUIRender, m.ConstStr("advisors"))
	m.Done()

	th := main.Method("loadThumb", 1)
	treq := th.CallAPI(air.APIHTTPNewRequest, th.ConstStr("GET"))
	th.CallAPI(air.APIHTTPSetURL, treq, th.StrConcat("http://"+poImgHost+"/athumb?aid=", th.Param(0)))
	tresp := th.CallAPI(air.APIHTTPExecute, treq)
	th.CallAPI(air.APIUIShowImage, tresp)
	th.Done()

	sel := main.Method("onSelectAdvisor", 1)
	advisors := sel.CallAPI(air.APIIntentGet, sel.ConstStr("po.advisors"))
	ids := sel.CallAPI(air.APIJSONGet, advisors, sel.ConstStr("advisors[*].id"))
	aid := sel.CallAPI(air.APIListGet, ids, sel.Param(0))
	sel.CallAPI(air.APIIntentPut, sel.ConstStr("po.sel"), aid)
	sel.Invoke("POAdvisor.open")
	sel.Done()

	adv := pb.Class("POAdvisor", air.KindActivity)

	fi := adv.Method("fetchInfo", 1)
	freq := fi.CallAPI(air.APIHTTPNewRequest, fi.ConstStr("POST"))
	fi.CallAPI(air.APIHTTPSetURL, freq, fi.ConstStr("http://"+poAPIHost+"/api/advisor/get"))
	fi.CallAPI(air.APIHTTPAddHeader, freq, fi.ConstStr("Cookie"), fi.CallAPI(air.APIDeviceCookie, fi.ConstStr(poAPIHost)))
	fi.CallAPI(air.APIHTTPSetBodyField, freq, fi.ConstStr("advisor_id"), fi.Param(0))
	fi.CallAPI(air.APIHTTPSetBodyField, freq, fi.ConstStr("_locale"), fi.CallAPI(air.APIDeviceLocale))
	fresp := fi.CallAPI(air.APIHTTPExecute, freq)
	fbody := fi.CallAPI(air.APIHTTPRespBody, fresp)
	fi.Return(fbody)
	fi.Done()

	oi := adv.Method("onInfo", 1)
	purl := oi.CallAPI(air.APIJSONGet, oi.Param(0), oi.ConstStr("advisor.profile_image"))
	preq := oi.CallAPI(air.APIHTTPNewRequest, oi.ConstStr("GET"))
	oi.CallAPI(air.APIHTTPSetURL, preq, purl)
	presp := oi.CallAPI(air.APIHTTPExecute, preq)
	oi.CallAPI(air.APIUIShowImage, presp)
	vurl := oi.CallAPI(air.APIJSONGet, oi.Param(0), oi.ConstStr("advisor.video_still"))
	vreq := oi.CallAPI(air.APIHTTPNewRequest, oi.ConstStr("GET"))
	oi.CallAPI(air.APIHTTPSetURL, vreq, vurl)
	vresp := oi.CallAPI(air.APIHTTPExecute, vreq)
	oi.CallAPI(air.APIUIShowImage, vresp)
	oi.CallAPI(air.APIUIRender, oi.ConstStr("advisor"))
	oi.Done()

	o := adv.Method("open", 0)
	oid := o.CallAPI(air.APIIntentGet, o.ConstStr("po.sel"))
	obs := o.CallAPI(air.APIRxJust, oid)
	mapped := o.CallAPI(air.APIRxMap, obs, o.ConstStr("POAdvisor.fetchInfo"))
	o.CallAPI(air.APIRxSubscribe, mapped, o.ConstStr("POAdvisor.onInfo"))
	o.Done()

	buildPurpleOceanExtras(pb)

	prog := pb.MustBuild()
	a := &apk.APK{
		Manifest: apk.Manifest{
			Package:         "com.purpleocean.example",
			Label:           "Purple Ocean",
			Version:         "3.1.0",
			Category:        "Psychic reading",
			LaunchHandler:   "POMain.launch",
			LaunchScreen:    "advisors",
			MainInteraction: "Loads an advisor page",
		},
		Screens: []apk.Screen{
			{Name: "advisors", Widgets: []apk.Widget{
				{ID: "advisor", Kind: apk.ListItem, Handler: "POMain.onSelectAdvisor", MaxIndex: poAdvisorN, Target: "advisor", Main: true},
			}},
			{Name: "advisor", Widgets: []apk.Widget{{ID: "back", Kind: apk.Back}}},
		},
		Program: prog,
	}
	extraScreens, advisorsExtras := purpleOceanExtraScreens()
	a.Screens[0].Widgets = append(a.Screens[0].Widgets, advisorsExtras...)
	a.Screens = append(a.Screens, extraScreens...)
	a.Manifest.ServiceEntries = purpleOceanServiceEntries()
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return &App{
		Name:  "purpleocean",
		APK:   a,
		Hosts: []string{poAPIHost, poImgHost},
		HostRTT: map[string]time.Duration{
			poAPIHost: 230 * time.Millisecond, // Table 2: advisor information
			poImgHost: 15 * time.Millisecond,  // Table 2: profile/video images
		},
		RenderDelay: map[string]time.Duration{
			"advisors": 2200 * time.Millisecond,
			"advisor":  800 * time.Millisecond, // large processing delay, §6.2
		},
		Handler:    purpleOceanHandler,
		MainScreen: "advisors",
		MainPath:   "/api/advisor/get",
	}
}

func purpleOceanHandler(scale float64) http.Handler {
	advisorIDs := ids("po-advisors", poAdvisorN)
	known := map[string]bool{}
	for _, id := range advisorIDs {
		known[id] = true
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/advisors", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(30*time.Millisecond, scale)
		advisors := make([]any, len(advisorIDs))
		for i, id := range advisorIDs {
			advisors[i] = map[string]any{"id": id, "name": "advisor-" + id, "rating": 4.8}
		}
		w.Header().Set("Set-Cookie", "posid=p"+advisorIDs[0]+"; Path=/")
		writeJSON(w, map[string]any{"advisors": advisors, "filler": pad(1800)})
	})
	mux.HandleFunc("/api/advisor/get", func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm()
		aid := r.PostFormValue("advisor_id")
		if !known[aid] {
			writeErr(w, http.StatusNotFound, "unknown advisor")
			return
		}
		sleepScaled(35*time.Millisecond, scale)
		writeJSON(w, map[string]any{"advisor": map[string]any{
			"id":            aid,
			"profile_image": "http://" + poImgHost + "/prof?aid=" + aid,
			"video_still":   "http://" + poImgHost + "/still?aid=" + aid,
			"bio":           pad(6000),
		}})
	})
	mux.HandleFunc("/athumb", func(w http.ResponseWriter, r *http.Request) {
		aid := r.URL.Query().Get("aid")
		if aid == "" {
			writeErr(w, http.StatusBadRequest, "missing aid")
			return
		}
		writeImage(w, "po-thumb-"+aid, 25*1000)
	})
	mux.HandleFunc("/prof", func(w http.ResponseWriter, r *http.Request) {
		aid := r.URL.Query().Get("aid")
		if !known[aid] {
			writeErr(w, http.StatusNotFound, "unknown advisor")
			return
		}
		writeImage(w, "po-prof-"+aid, 50*1000)
	})
	mux.HandleFunc("/still", func(w http.ResponseWriter, r *http.Request) {
		aid := r.URL.Query().Get("aid")
		if !known[aid] {
			writeErr(w, http.StatusNotFound, "unknown advisor")
			return
		}
		writeImage(w, "po-still-"+aid, 60*1000)
	})
	registerPurpleOceanExtraRoutes(mux, scale)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "purpleocean: no route "+r.URL.Path)
	})
	return mux
}
