package apps

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"appx/internal/air"
	"appx/internal/httpmsg"
	"appx/internal/interp"
	"appx/internal/static"
)

// handlerTransport bridges the interpreter's transport straight into the
// app's origin handler, in process.
type handlerTransport struct {
	handler http.Handler
	h       map[string]bool
	txns    []*httpmsg.Transaction
}

func newHandlerTransport(a *App) *handlerTransport {
	hosts := map[string]bool{}
	for _, h := range a.Hosts {
		hosts[h] = true
	}
	return &handlerTransport{handler: a.Handler(0), h: hosts}
}

func (t *handlerTransport) RoundTrip(r *httpmsg.Request) (*httpmsg.Response, error) {
	if !t.h[r.Host] {
		return &httpmsg.Response{Status: 502, Body: []byte("unknown host " + r.Host)}, nil
	}
	hreq, err := r.ToHTTP()
	if err != nil {
		return nil, err
	}
	hreq.Host = r.Host
	rec := httptest.NewRecorder()
	t.handler.ServeHTTP(rec, hreq)
	resp, err := httpmsg.FromHTTPResponse(rec.Result())
	if err != nil {
		return nil, err
	}
	t.txns = append(t.txns, &httpmsg.Transaction{Request: r, Response: resp})
	return resp, nil
}

func runApp(t *testing.T, a *App, interactions func(env *interp.Env)) *handlerTransport {
	t.Helper()
	tr := newHandlerTransport(a)
	env := interp.NewEnv(a.APK.Program, tr, interp.DeviceProps{
		UserAgent: "AppxTest/1.0", Locale: "en-US", AppVersion: a.APK.Manifest.Version,
	})
	if _, err := env.Call(a.APK.Manifest.LaunchHandler); err != nil {
		t.Fatalf("%s launch: %v", a.Name, err)
	}
	if interactions != nil {
		interactions(env)
	}
	return tr
}

func TestAllAppsValidate(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("apps = %d, want 5", len(all))
	}
	names := map[string]bool{}
	for _, a := range all {
		if err := a.APK.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if names[a.Name] {
			t.Errorf("duplicate app name %s", a.Name)
		}
		names[a.Name] = true
		if _, w := a.APK.MainWidget(); w == nil {
			t.Errorf("%s: no main widget", a.Name)
		}
		if len(a.Hosts) == 0 || a.Handler == nil || a.MainPath == "" {
			t.Errorf("%s: incomplete app definition", a.Name)
		}
		for _, h := range a.Hosts {
			if _, ok := a.HostRTT[h]; !ok {
				t.Errorf("%s: missing RTT for host %s", a.Name, h)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("wish") == nil || ByName("nope") != nil {
		t.Fatal("ByName wrong")
	}
}

func TestWishEndToEnd(t *testing.T) {
	a := Wish()
	tr := runApp(t, a, func(env *interp.Env) {
		if _, err := env.Call("WishMain.onSelectItem", "3"); err != nil {
			t.Fatalf("select item: %v", err)
		}
		if _, err := env.Call("WishDetail.onOpenMerchant"); err != nil {
			t.Fatalf("open merchant: %v", err)
		}
	})
	// Launch: 1 feed + 30 thumbs. Select: detail + related + image.
	// Merchant: merchant + ratings + profile image.
	want := 1 + wishFeedN + 3 + 3
	if len(tr.txns) != want {
		t.Fatalf("transactions = %d, want %d", len(tr.txns), want)
	}
	for i, txn := range tr.txns {
		if txn.Response.Status != 200 {
			t.Fatalf("txn %d %s %s -> %d %s", i, txn.Request.Method, txn.Request.URL(),
				txn.Response.Status, txn.Response.Body)
		}
	}
	// The detail image is the large product image.
	var sawBigImage bool
	for _, txn := range tr.txns {
		if txn.Request.Path == "/product-img" && len(txn.Response.Body) == wishImageKB*1000 {
			sawBigImage = true
		}
	}
	if !sawBigImage {
		t.Fatal("product image transaction missing or wrong size")
	}
}

func TestGeekEndToEnd(t *testing.T) {
	a := Geek()
	tr := runApp(t, a, func(env *interp.Env) {
		if _, err := env.Call("GeekMain.onSelectItem", "0"); err != nil {
			t.Fatalf("select item: %v", err)
		}
	})
	want := 1 + geekFeedN + 3
	if len(tr.txns) != want {
		t.Fatalf("transactions = %d, want %d", len(tr.txns), want)
	}
	for i, txn := range tr.txns {
		if txn.Response.Status != 200 {
			t.Fatalf("txn %d %s -> %d %s", i, txn.Request.URL(), txn.Response.Status, txn.Response.Body)
		}
	}
}

func TestDoorDashChainEndToEnd(t *testing.T) {
	a := DoorDash()
	tr := runApp(t, a, func(env *interp.Env) {
		if _, err := env.Call("DDMain.onSelectStore", "2"); err != nil {
			t.Fatalf("select store: %v", err)
		}
		if _, err := env.Call("DDStore.onSelectItem", "1"); err != nil {
			t.Fatalf("select item: %v", err)
		}
	})
	// Launch: stores + 16 images. Store: store + schedule + menu.
	// Item: item + suggest.
	want := 1 + ddStoreN + 3 + 2
	if len(tr.txns) != want {
		t.Fatalf("transactions = %d, want %d", len(tr.txns), want)
	}
	for i, txn := range tr.txns {
		if txn.Response.Status != 200 {
			t.Fatalf("txn %d %s -> %d %s", i, txn.Request.URL(), txn.Response.Status, txn.Response.Body)
		}
	}
}

func TestPurpleOceanEndToEnd(t *testing.T) {
	a := PurpleOcean()
	tr := runApp(t, a, func(env *interp.Env) {
		if _, err := env.Call("POMain.onSelectAdvisor", "4"); err != nil {
			t.Fatalf("select advisor: %v", err)
		}
	})
	want := 1 + poAdvisorN + 3
	if len(tr.txns) != want {
		t.Fatalf("transactions = %d, want %d", len(tr.txns), want)
	}
	for i, txn := range tr.txns {
		if txn.Response.Status != 200 {
			t.Fatalf("txn %d %s -> %d %s", i, txn.Request.URL(), txn.Response.Status, txn.Response.Body)
		}
	}
}

func TestPostmatesEndToEnd(t *testing.T) {
	a := Postmates()
	tr := runApp(t, a, func(env *interp.Env) {
		if _, err := env.Call("PMMain.onSelectRestaurant", "5"); err != nil {
			t.Fatalf("select restaurant: %v", err)
		}
	})
	want := 1 + pmFeedN + 2
	if len(tr.txns) != want {
		t.Fatalf("transactions = %d, want %d", len(tr.txns), want)
	}
	for i, txn := range tr.txns {
		if txn.Response.Status != 200 {
			t.Fatalf("txn %d %s -> %d %s", i, txn.Request.URL(), txn.Response.Status, txn.Response.Body)
		}
	}
}

// TestStaticAnalysisCoversLiveTraffic checks the core soundness property:
// every request each app actually generates matches one of the statically
// extracted signatures.
func TestStaticAnalysisCoversLiveTraffic(t *testing.T) {
	drive := map[string]func(env *interp.Env){
		"wish": func(env *interp.Env) {
			env.Call("WishMain.onSelectItem", "3")
			env.Call("WishDetail.onOpenMerchant")
		},
		"geek":        func(env *interp.Env) { env.Call("GeekMain.onSelectItem", "0") },
		"doordash":    func(env *interp.Env) { env.Call("DDMain.onSelectStore", "2"); env.Call("DDStore.onSelectItem", "1") },
		"purpleocean": func(env *interp.Env) { env.Call("POMain.onSelectAdvisor", "4") },
		"postmates":   func(env *interp.Env) { env.Call("PMMain.onSelectRestaurant", "5") },
	}
	for _, a := range All() {
		g, err := static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
		if err != nil {
			t.Fatalf("%s: Analyze: %v", a.Name, err)
		}
		if len(g.Sigs) == 0 || len(g.Deps) == 0 {
			t.Fatalf("%s: %d sigs, %d deps", a.Name, len(g.Sigs), len(g.Deps))
		}
		tr := runApp(t, a, drive[a.Name])
		for _, txn := range tr.txns {
			if ms := g.MatchRequest(txn.Request); len(ms) == 0 {
				b, _ := g.Marshal()
				t.Fatalf("%s: live request %s %s matches no signature\n%s",
					a.Name, txn.Request.Method, txn.Request.URL(), b)
			}
		}
	}
}

// TestDependencyShapes sanity-checks per-app dependency structure against
// the paper's case studies.
func TestDependencyShapes(t *testing.T) {
	analyze := func(a *App) interface {
		MaxChainLen() int
		Prefetchable() []string
	} {
		g, err := static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		return g
	}
	// DoorDash: stores → store → menu → item → suggest (Figure 11): at
	// least 4 transactions in the longest chain.
	if got := analyze(DoorDash()).MaxChainLen(); got < 4 {
		t.Errorf("doordash chain = %d, want >= 4", got)
	}
	// Wish: feed → detail → merchant → ratings (Figure 12 fan-out + chain).
	if got := analyze(Wish()).MaxChainLen(); got < 4 {
		t.Errorf("wish chain = %d, want >= 4", got)
	}
	for _, a := range All() {
		g := analyze(a)
		if n := len(g.Prefetchable()); n < 2 {
			t.Errorf("%s prefetchable = %d, want >= 2", a.Name, n)
		}
	}
}

// TestWishMerchantFanOut verifies the Figure-12 shape: the detail response
// feeds multiple successor transactions.
func TestWishMerchantFanOut(t *testing.T) {
	a := Wish()
	g, err := static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	var detailID string
	for _, s := range g.Sigs {
		if strings.Contains(s.URI.String(), "/product/get") {
			detailID = s.ID
		}
	}
	if detailID == "" {
		t.Fatal("no detail signature")
	}
	succ := g.Successors(detailID)
	if len(succ) < 2 {
		t.Fatalf("detail successors = %v, want >= 2 (image + merchant)", succ)
	}
}

func TestIDsDeterministic(t *testing.T) {
	a, b := ids("x", 5), ids("x", 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ids not deterministic")
		}
	}
	if ids("x", 3)[0] == ids("y", 3)[0] {
		t.Fatal("namespaces collide")
	}
}

func TestImageBytesDeterministicSize(t *testing.T) {
	b := imageBytes("seed", 1234)
	if len(b) != 1234 {
		t.Fatalf("size = %d", len(b))
	}
	b2 := imageBytes("seed", 1234)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("image bytes not deterministic")
		}
	}
}

// TestServiceEntriesRunAgainstOrigins executes every background service
// entry point (push handlers, sync jobs) through the interpreter against the
// app's origin — they must complete without error and generate traffic.
func TestServiceEntriesRunAgainstOrigins(t *testing.T) {
	for _, a := range All() {
		if len(a.APK.Manifest.ServiceEntries) == 0 {
			t.Errorf("%s: no service entries", a.Name)
			continue
		}
		tr := newHandlerTransport(a)
		env := interp.NewEnv(a.APK.Program, tr, interp.DeviceProps{
			UserAgent: "Svc/1.0", Locale: "en-US", AppVersion: a.APK.Manifest.Version,
		})
		for _, entry := range a.APK.Manifest.ServiceEntries {
			before := len(tr.txns)
			if _, err := env.Call(entry); err != nil {
				t.Errorf("%s: %s: %v", a.Name, entry, err)
				continue
			}
			if len(tr.txns) == before {
				t.Errorf("%s: %s generated no traffic", a.Name, entry)
			}
			for _, txn := range tr.txns[before:] {
				if txn.Response.Status != 200 {
					t.Errorf("%s: %s: %s -> %d %s", a.Name, entry, txn.Request.URL(), txn.Response.Status, txn.Response.Body)
				}
			}
		}
	}
}

// TestPostmatesTrackingChainDepth confirms the six-hop background chain the
// Table-3 comparison relies on.
func TestPostmatesTrackingChainDepth(t *testing.T) {
	a := Postmates()
	g, err := static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MaxChainLen(); got < 6 {
		t.Fatalf("postmates max chain = %d, want >= 6", got)
	}
}

// TestAppProgramsRoundTripThroughAssembler: every evaluation app's full AIR
// program survives disassemble → assemble byte-identically — the assembler
// and disassembler are exact inverses on real-sized programs.
func TestAppProgramsRoundTripThroughAssembler(t *testing.T) {
	for _, a := range All() {
		src := a.APK.Program.Disassemble()
		p2, err := air.Assemble(src)
		if err != nil {
			t.Fatalf("%s: Assemble: %v", a.Name, err)
		}
		if p2.Disassemble() != src {
			t.Fatalf("%s: assembler round trip changed the program", a.Name)
		}
		// The reassembled program must analyze identically.
		g1, err := static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
		if err != nil {
			t.Fatal(err)
		}
		g2, err := static.Analyze(p2, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
		if err != nil {
			t.Fatal(err)
		}
		if len(g1.Sigs) != len(g2.Sigs) || len(g1.Deps) != len(g2.Deps) {
			t.Fatalf("%s: analysis differs after round trip: %d/%d sigs, %d/%d deps",
				a.Name, len(g1.Sigs), len(g2.Sigs), len(g1.Deps), len(g2.Deps))
		}
	}
}
