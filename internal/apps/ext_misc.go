package apps

import (
	"net/http"
	"time"

	"appx/internal/air"
	"appx/internal/apk"
)

// Secondary surfaces for Geek (brands browsing, item reviews, a flash-deals
// background sync) and Purple Ocean (daily horoscope, reading history, and a
// chat-token background handshake).

// --- Geek ---

func buildGeekExtras(pb *air.ProgramBuilder) {
	brands := pb.Class("GeekBrands", air.KindActivity)

	bo := brands.Method("open", 0)
	breq := bo.CallAPI(air.APIHTTPNewRequest, bo.ConstStr("GET"))
	bo.CallAPI(air.APIHTTPSetURL, breq, bo.ConstStr("http://"+geekAPIHost+"/api/brands"))
	bresp := bo.CallAPI(air.APIHTTPExecute, breq)
	bbody := bo.CallAPI(air.APIHTTPRespBody, bresp)
	bo.CallAPI(air.APIIntentPut, bo.ConstStr("geek.brands"), bbody)
	bo.CallAPI(air.APIUIRender, bo.ConstStr("brands"))
	bo.Done()

	ob := brands.Method("onSelectBrand", 1)
	bs := ob.CallAPI(air.APIIntentGet, ob.ConstStr("geek.brands"))
	bids := ob.CallAPI(air.APIJSONGet, bs, ob.ConstStr("brands[*].id"))
	bid := ob.CallAPI(air.APIListGet, bids, ob.Param(0))
	ireq := ob.CallAPI(air.APIHTTPNewRequest, ob.ConstStr("GET"))
	ob.CallAPI(air.APIHTTPSetURL, ireq, ob.ConstStr("http://"+geekAPIHost+"/api/brand/items"))
	ob.CallAPI(air.APIHTTPAddQuery, ireq, ob.ConstStr("b"), bid)
	ob.CallAPI(air.APIHTTPExecute, ireq)
	ob.CallAPI(air.APIUIRender, ob.ConstStr("brand"))
	ob.Done()

	// Reviews for the currently open item.
	rev := pb.Class("GeekReviews", air.KindActivity)
	ro := rev.Method("open", 0)
	rid := ro.CallAPI(air.APIIntentGet, ro.ConstStr("geek.sel"))
	rreq := ro.CallAPI(air.APIHTTPNewRequest, ro.ConstStr("GET"))
	ro.CallAPI(air.APIHTTPSetURL, rreq, ro.ConstStr("http://"+geekAPIHost+"/api/reviews"))
	ro.CallAPI(air.APIHTTPAddQuery, rreq, ro.ConstStr("item_id"), rid)
	ro.CallAPI(air.APIHTTPExecute, rreq)
	ro.CallAPI(air.APIUIRender, ro.ConstStr("reviews"))
	ro.Done()

	// Background flash-deals sync (not reachable from the UI).
	syncC := pb.Class("GeekSync", air.KindService)
	fd := syncC.Method("onFlashDeals", 0)
	freq := fd.CallAPI(air.APIHTTPNewRequest, fd.ConstStr("GET"))
	fd.CallAPI(air.APIHTTPSetURL, freq, fd.ConstStr("http://"+geekAPIHost+"/api/flash"))
	fresp := fd.CallAPI(air.APIHTTPExecute, freq)
	fbody := fd.CallAPI(air.APIHTTPRespBody, fresp)
	fids := fd.CallAPI(air.APIJSONGet, fbody, fd.ConstStr("flash[*].id"))
	fd.ForEach(fids, "GeekSync.loadDeal")
	fd.Done()

	ld := syncC.Method("loadDeal", 1)
	dreq := ld.CallAPI(air.APIHTTPNewRequest, ld.ConstStr("GET"))
	ld.CallAPI(air.APIHTTPSetURL, dreq, ld.ConstStr("http://"+geekAPIHost+"/api/flash/item"))
	ld.CallAPI(air.APIHTTPAddQuery, dreq, ld.ConstStr("id"), ld.Param(0))
	ld.CallAPI(air.APIHTTPExecute, dreq)
	ld.Done()
}

func geekExtraScreens() (extra []apk.Screen, feedWidgets, detailWidgets []apk.Widget) {
	extra = []apk.Screen{
		{Name: "brands", Widgets: []apk.Widget{
			{ID: "brand", Kind: apk.ListItem, Handler: "GeekBrands.onSelectBrand", MaxIndex: 6, Target: "brand"},
			{ID: "back", Kind: apk.Back},
		}},
		{Name: "brand", Widgets: []apk.Widget{{ID: "back", Kind: apk.Back}}},
		{Name: "reviews", Widgets: []apk.Widget{{ID: "back", Kind: apk.Back}}},
	}
	feedWidgets = []apk.Widget{
		{ID: "brands", Kind: apk.Button, Handler: "GeekBrands.open", Target: "brands"},
	}
	detailWidgets = []apk.Widget{
		{ID: "reviews", Kind: apk.Button, Handler: "GeekReviews.open", Target: "reviews"},
	}
	return
}

func geekServiceEntries() []string { return []string{"GeekSync.onFlashDeals"} }

func registerGeekExtraRoutes(mux *http.ServeMux, scale float64, feedIDs []string) {
	brandIDs := ids("geek-brands", 6)
	knownBrand := map[string]bool{}
	for _, id := range brandIDs {
		knownBrand[id] = true
	}
	flashIDs := ids("geek-flash", 4)
	knownFlash := map[string]bool{}
	for _, id := range flashIDs {
		knownFlash[id] = true
	}

	mux.HandleFunc("/api/brands", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(20*time.Millisecond, scale)
		brands := make([]any, len(brandIDs))
		for i, id := range brandIDs {
			brands[i] = map[string]any{"id": id, "name": "brand-" + id}
		}
		writeJSON(w, map[string]any{"brands": brands})
	})
	mux.HandleFunc("/api/brand/items", func(w http.ResponseWriter, r *http.Request) {
		if !knownBrand[r.URL.Query().Get("b")] {
			writeErr(w, http.StatusNotFound, "unknown brand")
			return
		}
		sleepScaled(25*time.Millisecond, scale)
		writeJSON(w, map[string]any{"items": []any{feedIDs[0], feedIDs[3]}, "filler": pad(1600)})
	})
	mux.HandleFunc("/api/reviews", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("item_id") == "" {
			writeErr(w, http.StatusBadRequest, "missing item_id")
			return
		}
		sleepScaled(25*time.Millisecond, scale)
		writeJSON(w, map[string]any{"reviews": []any{
			map[string]any{"stars": 5, "text": pad(300)},
			map[string]any{"stars": 4, "text": pad(250)},
		}})
	})
	mux.HandleFunc("/api/flash", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(15*time.Millisecond, scale)
		flash := make([]any, len(flashIDs))
		for i, id := range flashIDs {
			flash[i] = map[string]any{"id": id}
		}
		writeJSON(w, map[string]any{"flash": flash})
	})
	mux.HandleFunc("/api/flash/item", func(w http.ResponseWriter, r *http.Request) {
		if !knownFlash[r.URL.Query().Get("id")] {
			writeErr(w, http.StatusNotFound, "unknown deal")
			return
		}
		writeJSON(w, map[string]any{"deal": map[string]any{"discount": 40, "body": pad(500)}})
	})
}

// --- Purple Ocean ---

func buildPurpleOceanExtras(pb *air.ProgramBuilder) {
	horo := pb.Class("POHoroscope", air.KindActivity)
	ho := horo.Method("open", 0)
	hreq := ho.CallAPI(air.APIHTTPNewRequest, ho.ConstStr("GET"))
	ho.CallAPI(air.APIHTTPSetURL, hreq, ho.ConstStr("http://"+poAPIHost+"/api/horoscope"))
	ho.CallAPI(air.APIHTTPAddQuery, hreq, ho.ConstStr("sign"), ho.ConstStr("aries"))
	ho.CallAPI(air.APIHTTPAddQuery, hreq, ho.ConstStr("locale"), ho.CallAPI(air.APIDeviceLocale))
	ho.CallAPI(air.APIHTTPExecute, hreq)
	ho.CallAPI(air.APIUIRender, ho.ConstStr("horoscope"))
	ho.Done()

	hist := pb.Class("POHistory", air.KindActivity)
	hoo := hist.Method("open", 0)
	lreq := hoo.CallAPI(air.APIHTTPNewRequest, hoo.ConstStr("GET"))
	hoo.CallAPI(air.APIHTTPSetURL, lreq, hoo.ConstStr("http://"+poAPIHost+"/api/readings"))
	hoo.CallAPI(air.APIHTTPAddHeader, lreq, hoo.ConstStr("Cookie"), hoo.CallAPI(air.APIDeviceCookie, hoo.ConstStr(poAPIHost)))
	lresp := hoo.CallAPI(air.APIHTTPExecute, lreq)
	lbody := hoo.CallAPI(air.APIHTTPRespBody, lresp)
	hoo.CallAPI(air.APIIntentPut, hoo.ConstStr("po.readings"), lbody)
	hoo.CallAPI(air.APIUIRender, hoo.ConstStr("history"))
	hoo.Done()

	osr := hist.Method("onSelectReading", 1)
	rs := osr.CallAPI(air.APIIntentGet, osr.ConstStr("po.readings"))
	rids := osr.CallAPI(air.APIJSONGet, rs, osr.ConstStr("readings[*].id"))
	rid := osr.CallAPI(air.APIListGet, rids, osr.Param(0))
	rreq := osr.CallAPI(air.APIHTTPNewRequest, osr.ConstStr("GET"))
	osr.CallAPI(air.APIHTTPSetURL, rreq, osr.ConstStr("http://"+poAPIHost+"/api/reading"))
	osr.CallAPI(air.APIHTTPAddQuery, rreq, osr.ConstStr("rid"), rid)
	osr.CallAPI(air.APIHTTPExecute, rreq)
	osr.CallAPI(air.APIUIRender, osr.ConstStr("reading"))
	osr.Done()

	// Background chat handshake: token → config (fuzz-unreachable).
	chat := pb.Class("POChat", air.KindService)
	ot := chat.Method("onToken", 0)
	treq := ot.CallAPI(air.APIHTTPNewRequest, ot.ConstStr("POST"))
	ot.CallAPI(air.APIHTTPSetURL, treq, ot.ConstStr("http://"+poAPIHost+"/api/chat/token"))
	ot.CallAPI(air.APIHTTPSetBodyField, treq, ot.ConstStr("_client"), ot.ConstStr("android"))
	tresp := ot.CallAPI(air.APIHTTPExecute, treq)
	tbody := ot.CallAPI(air.APIHTTPRespBody, tresp)
	tok := ot.CallAPI(air.APIJSONGet, tbody, ot.ConstStr("token"))
	cfgReq := ot.CallAPI(air.APIHTTPNewRequest, ot.ConstStr("GET"))
	ot.CallAPI(air.APIHTTPSetURL, cfgReq, ot.ConstStr("http://"+poAPIHost+"/api/chat/config"))
	ot.CallAPI(air.APIHTTPAddQuery, cfgReq, ot.ConstStr("t"), tok)
	ot.CallAPI(air.APIHTTPExecute, cfgReq)
	ot.Done()
}

func purpleOceanExtraScreens() (extra []apk.Screen, advisorsWidgets []apk.Widget) {
	extra = []apk.Screen{
		{Name: "horoscope", Widgets: []apk.Widget{{ID: "back", Kind: apk.Back}}},
		{Name: "history", Widgets: []apk.Widget{
			{ID: "reading", Kind: apk.ListItem, Handler: "POHistory.onSelectReading", MaxIndex: 4, Target: "reading"},
			{ID: "back", Kind: apk.Back},
		}},
		{Name: "reading", Widgets: []apk.Widget{{ID: "back", Kind: apk.Back}}},
	}
	advisorsWidgets = []apk.Widget{
		{ID: "horoscope", Kind: apk.Button, Handler: "POHoroscope.open", Target: "horoscope"},
		{ID: "history", Kind: apk.Button, Handler: "POHistory.open", Target: "history"},
	}
	return
}

func purpleOceanServiceEntries() []string { return []string{"POChat.onToken"} }

func registerPurpleOceanExtraRoutes(mux *http.ServeMux, scale float64) {
	readingIDs := ids("po-readings", 4)
	knownReading := map[string]bool{}
	for _, id := range readingIDs {
		knownReading[id] = true
	}
	mux.HandleFunc("/api/horoscope", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("sign") == "" {
			writeErr(w, http.StatusBadRequest, "missing sign")
			return
		}
		sleepScaled(25*time.Millisecond, scale)
		writeJSON(w, map[string]any{"horoscope": map[string]any{"sign": r.URL.Query().Get("sign"), "text": pad(1800)}})
	})
	mux.HandleFunc("/api/readings", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(20*time.Millisecond, scale)
		readings := make([]any, len(readingIDs))
		for i, id := range readingIDs {
			readings[i] = map[string]any{"id": id, "date": "2018-11-0" + string(rune('1'+i))}
		}
		writeJSON(w, map[string]any{"readings": readings})
	})
	mux.HandleFunc("/api/reading", func(w http.ResponseWriter, r *http.Request) {
		if !knownReading[r.URL.Query().Get("rid")] {
			writeErr(w, http.StatusNotFound, "unknown reading")
			return
		}
		sleepScaled(20*time.Millisecond, scale)
		writeJSON(w, map[string]any{"reading": map[string]any{"transcript": pad(2500)}})
	})
	mux.HandleFunc("/api/chat/token", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(15*time.Millisecond, scale)
		writeJSON(w, map[string]any{"token": "chat-" + readingIDs[0]})
	})
	mux.HandleFunc("/api/chat/config", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("t") == "" {
			writeErr(w, http.StatusBadRequest, "missing t")
			return
		}
		writeJSON(w, map[string]any{"config": map[string]any{"ws": "wss://chat.purpleocean.example"}})
	})
}
