package apps

import (
	"fmt"
	"net/http"
	"time"

	"appx/internal/air"
	"appx/internal/apk"
)

// Wish hosts and payload sizes (§6.2: product images ~315 KB, other
// transactions ~14 KB).
const (
	wishAPIHost  = "api.wish.example"
	wishImgHost  = "img.wish.example"
	wishThumbKB  = 40
	wishImageKB  = 315
	wishDetailKB = 10
	wishFeedN    = 30
)

// Wish builds the Wish-like shopping app: the paper's working example
// (Figures 1–3 and 5). Start page = recommended feed + thumbnails; selecting
// an item loads details (branch-conditional `credit_id` body field, Figure 8)
// and related items through an Rx pipeline; the merchant page issues a
// multi-hop chain (merchant info → ratings + profile image) with the
// merchant context passed through a heap object (alias analysis) and the
// selected item id passed through an Intent.
func Wish() *App {
	pb := air.NewProgramBuilder()

	main := pb.Class("WishMain", air.KindActivity)

	// launch: POST /api/get-feed, store the body, fetch every thumbnail.
	m := main.Method("launch", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("POST"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://"+wishAPIHost+"/api/get-feed"))
	m.CallAPI(air.APIHTTPAddHeader, req, m.ConstStr("User-Agent"), m.CallAPI(air.APIDeviceUserAgent))
	m.CallAPI(air.APIHTTPAddHeader, req, m.ConstStr("Cookie"), m.CallAPI(air.APIDeviceCookie, m.ConstStr(wishAPIHost)))
	m.CallAPI(air.APIHTTPSetBodyField, req, m.ConstStr("offset"), m.ConstStr("0"))
	m.CallAPI(air.APIHTTPSetBodyField, req, m.ConstStr("count"), m.ConstStr("30"))
	m.CallAPI(air.APIHTTPSetBodyField, req, m.ConstStr("_ver"), m.CallAPI(air.APIDeviceVersion))
	m.CallAPI(air.APIHTTPSetBodyField, req, m.ConstStr("_build"), m.ConstStr("amazon"))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	m.CallAPI(air.APIIntentPut, m.ConstStr("wish.feed"), body)
	idsReg := m.CallAPI(air.APIJSONGet, body, m.ConstStr("data.products[*].product_info.id"))
	m.ForEach(idsReg, "WishMain.loadThumb")
	m.CallAPI(air.APIUIRender, m.ConstStr("feed"))
	m.Done()

	// loadThumb: GET img host /img?cid=<id>.
	th := main.Method("loadThumb", 1)
	treq := th.CallAPI(air.APIHTTPNewRequest, th.ConstStr("GET"))
	turl := th.StrConcat("http://"+wishImgHost+"/img?cid=", th.Param(0))
	th.CallAPI(air.APIHTTPSetURL, treq, turl)
	tresp := th.CallAPI(air.APIHTTPExecute, treq)
	th.CallAPI(air.APIUIShowImage, tresp)
	th.Done()

	// onSelectItem(position): resolve the id and hand it to the detail
	// activity through an Intent.
	sel := main.Method("onSelectItem", 1)
	feed := sel.CallAPI(air.APIIntentGet, sel.ConstStr("wish.feed"))
	sids := sel.CallAPI(air.APIJSONGet, feed, sel.ConstStr("data.products[*].product_info.id"))
	sid := sel.CallAPI(air.APIListGet, sids, sel.Param(0))
	sel.CallAPI(air.APIIntentPut, sel.ConstStr("wish.sel"), sid)
	sel.Invoke("WishDetail.open")
	sel.Done()

	det := pb.Class("WishDetail", air.KindActivity)

	// open: product detail + related (via Rx) + product image (URL taken
	// from the detail response).
	d := det.Method("open", 0)
	id := d.CallAPI(air.APIIntentGet, d.ConstStr("wish.sel"))
	dreq := d.CallAPI(air.APIHTTPNewRequest, d.ConstStr("POST"))
	d.CallAPI(air.APIHTTPSetURL, dreq, d.ConstStr("http://"+wishAPIHost+"/product/get"))
	d.CallAPI(air.APIHTTPAddHeader, dreq, d.ConstStr("User-Agent"), d.CallAPI(air.APIDeviceUserAgent))
	d.CallAPI(air.APIHTTPAddHeader, dreq, d.ConstStr("Cookie"), d.CallAPI(air.APIDeviceCookie, d.ConstStr(wishAPIHost)))
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("cid"), id)
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("_client"), d.ConstStr("android"))
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("_ver"), d.CallAPI(air.APIDeviceVersion))
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("_xsrf"), d.ConstStr("1"))
	skip := d.Block()
	cont := d.Block()
	noCredit := d.CallAPI(air.APIDeviceFlag, d.ConstStr("no_credit"))
	d.If(noCredit, skip)
	d.CallAPI(air.APIHTTPSetBodyField, dreq, d.ConstStr("credit_id"), d.CallAPI(air.APIDeviceLocale))
	d.Goto(cont)
	d.Enter(skip)
	d.Goto(cont)
	d.Enter(cont)
	dresp := d.CallAPI(air.APIHTTPExecute, dreq)
	dbody := d.CallAPI(air.APIHTTPRespBody, dresp)
	d.CallAPI(air.APIIntentPut, d.ConstStr("wish.detail"), dbody)
	// Related items through an Rx pipeline.
	obs := d.CallAPI(air.APIRxJust, id)
	d.CallAPI(air.APIRxSubscribe, obs, d.ConstStr("WishDetail.loadRelated"))
	// Product image: the URL comes from the detail response.
	iurl := d.CallAPI(air.APIJSONGet, dbody, d.ConstStr("data.product.image"))
	ireq := d.CallAPI(air.APIHTTPNewRequest, d.ConstStr("GET"))
	d.CallAPI(air.APIHTTPSetURL, ireq, iurl)
	iresp := d.CallAPI(air.APIHTTPExecute, ireq)
	d.CallAPI(air.APIUIShowImage, iresp)
	d.CallAPI(air.APIUIRender, d.ConstStr("detail"))
	d.Done()

	rel := det.Method("loadRelated", 1)
	rreq := rel.CallAPI(air.APIHTTPNewRequest, rel.ConstStr("POST"))
	rel.CallAPI(air.APIHTTPSetURL, rreq, rel.ConstStr("http://"+wishAPIHost+"/related/get"))
	rel.CallAPI(air.APIHTTPAddHeader, rreq, rel.ConstStr("Cookie"), rel.CallAPI(air.APIDeviceCookie, rel.ConstStr(wishAPIHost)))
	rel.CallAPI(air.APIHTTPSetBodyField, rreq, rel.ConstStr("cid"), rel.Param(0))
	rel.CallAPI(air.APIHTTPSetBodyField, rreq, rel.ConstStr("_client"), rel.ConstStr("android"))
	rel.CallAPI(air.APIHTTPExecute, rreq)
	rel.Done()

	// onOpenMerchant: merchant info → (ratings + profile image) via a
	// context object crossing method boundaries (alias analysis, §4.1).
	om := det.Method("onOpenMerchant", 0)
	ddoc := om.CallAPI(air.APIIntentGet, om.ConstStr("wish.detail"))
	mname := om.CallAPI(air.APIJSONGet, ddoc, om.ConstStr("data.product.merchant"))
	mreq := om.CallAPI(air.APIHTTPNewRequest, om.ConstStr("GET"))
	om.CallAPI(air.APIHTTPSetURL, mreq, om.ConstStr("http://"+wishAPIHost+"/api/merchant"))
	om.CallAPI(air.APIHTTPAddQuery, mreq, om.ConstStr("m"), mname)
	mresp := om.CallAPI(air.APIHTTPExecute, mreq)
	mbody := om.CallAPI(air.APIHTTPRespBody, mresp)
	ctx := om.NewObject("MerchantCtx")
	om.IPut(ctx, "id", om.CallAPI(air.APIJSONGet, mbody, om.ConstStr("data.merchant.id")))
	om.IPut(ctx, "img", om.CallAPI(air.APIJSONGet, mbody, om.ConstStr("data.merchant.image")))
	om.Invoke("WishDetail.loadRatings", ctx)
	om.Invoke("WishDetail.loadProfileImage", ctx)
	om.CallAPI(air.APIUIRender, om.ConstStr("merchant"))
	om.Done()

	lr := det.Method("loadRatings", 1)
	lid := lr.IGet(lr.Param(0), "id")
	lreq := lr.CallAPI(air.APIHTTPNewRequest, lr.ConstStr("GET"))
	lr.CallAPI(air.APIHTTPSetURL, lreq, lr.ConstStr("http://"+wishAPIHost+"/api/ratings/get"))
	lr.CallAPI(air.APIHTTPAddQuery, lreq, lr.ConstStr("id"), lid)
	lr.CallAPI(air.APIHTTPExecute, lreq)
	lr.Done()

	lp := det.Method("loadProfileImage", 1)
	purl := lp.IGet(lp.Param(0), "img")
	preq := lp.CallAPI(air.APIHTTPNewRequest, lp.ConstStr("GET"))
	lp.CallAPI(air.APIHTTPSetURL, preq, purl)
	presp := lp.CallAPI(air.APIHTTPExecute, preq)
	lp.CallAPI(air.APIUIShowImage, presp)
	lp.Done()

	buildWishExtras(pb)

	prog := pb.MustBuild()
	a := &apk.APK{
		Manifest: apk.Manifest{
			Package:         "com.wish.example",
			Label:           "Wish",
			Version:         "4.13.0",
			Category:        "Shopping",
			LaunchHandler:   "WishMain.launch",
			LaunchScreen:    "feed",
			MainInteraction: "Loads an item detail",
		},
		Screens: []apk.Screen{
			{Name: "feed", Widgets: []apk.Widget{
				{ID: "item", Kind: apk.ListItem, Handler: "WishMain.onSelectItem", MaxIndex: wishFeedN, Target: "detail", Main: true},
			}},
			{Name: "detail", Widgets: []apk.Widget{
				{ID: "merchant", Kind: apk.Button, Handler: "WishDetail.onOpenMerchant", Target: "merchant"},
				{ID: "back", Kind: apk.Back},
			}},
			{Name: "merchant", Widgets: []apk.Widget{
				{ID: "back", Kind: apk.Back},
			}},
		},
		Program: prog,
	}
	extraScreens, feedExtras, detailExtras := wishExtraScreens()
	a.Screens[0].Widgets = append(a.Screens[0].Widgets, feedExtras...)
	a.Screens[1].Widgets = append(a.Screens[1].Widgets, detailExtras...)
	a.Screens = append(a.Screens, extraScreens...)
	a.Manifest.ServiceEntries = wishServiceEntries()
	if err := a.Validate(); err != nil {
		panic(err)
	}

	return &App{
		Name:  "wish",
		APK:   a,
		Hosts: []string{wishAPIHost, wishImgHost},
		HostRTT: map[string]time.Duration{
			wishAPIHost: 165 * time.Millisecond, // Table 2: product detail
			wishImgHost: 16 * time.Millisecond,  // Table 2: product image
		},
		RenderDelay: map[string]time.Duration{
			"feed":     2000 * time.Millisecond, // Fig 14 processing slice
			"detail":   400 * time.Millisecond,  // Fig 13 processing slice
			"merchant": 500 * time.Millisecond,
		},
		Handler:    wishHandler,
		MainScreen: "feed",
		MainPath:   "/product/get",
	}
}

// wishHandler implements the Wish origin API.
func wishHandler(scale float64) http.Handler {
	feedIDs := ids("wish-feed", wishFeedN)
	known := map[string]bool{}
	for _, id := range feedIDs {
		known[id] = true
	}
	// Related items reference further ids; make them servable too.
	relIDs := ids("wish-related", 8)
	for _, id := range relIDs {
		known[id] = true
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/api/get-feed", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		sleepScaled(25*time.Millisecond, scale)
		products := make([]any, len(feedIDs))
		for i, id := range feedIDs {
			products[i] = map[string]any{
				"aspect_rat": 1.2,
				"product_info": map[string]any{
					"id":       id,
					"can_ship": true,
				},
				"thumb": "http://" + wishImgHost + "/img?cid=" + id,
			}
		}
		w.Header().Set("Set-Cookie", "bsid=w"+feedIDs[0]+"; Path=/")
		writeJSON(w, map[string]any{"data": map[string]any{"products": products, "filler": pad(2000)}})
	})
	mux.HandleFunc("/product/get", func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm()
		cid := r.PostFormValue("cid")
		if cid == "" || !known[cid] {
			writeErr(w, http.StatusNotFound, "unknown cid")
			return
		}
		sleepScaled(30*time.Millisecond, scale)
		writeJSON(w, map[string]any{"data": map[string]any{
			"product": map[string]any{
				"id":       cid,
				"merchant": "Silk-" + cid[:3],
				"image":    "http://" + wishImgHost + "/product-img?cid=" + cid,
				"price":    1999,
				"shipping": pad(wishDetailKB * 1000),
			},
		}})
	})
	mux.HandleFunc("/related/get", func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm()
		cid := r.PostFormValue("cid")
		if cid == "" || !known[cid] {
			writeErr(w, http.StatusNotFound, "unknown cid")
			return
		}
		sleepScaled(20*time.Millisecond, scale)
		rel := make([]any, len(relIDs))
		for i, id := range relIDs {
			rel[i] = map[string]any{"id": id}
		}
		writeJSON(w, map[string]any{"data": map[string]any{"related": rel, "filler": pad(4000)}})
	})
	mux.HandleFunc("/api/merchant", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("m")
		if name == "" {
			writeErr(w, http.StatusBadRequest, "missing m")
			return
		}
		sleepScaled(25*time.Millisecond, scale)
		mid := "m" + ids("wish-merchant-"+name, 1)[0]
		writeJSON(w, map[string]any{"data": map[string]any{
			"merchant": map[string]any{
				"id":    mid,
				"name":  name,
				"image": "http://" + wishImgHost + "/prof?cid=" + mid,
				"items": []any{map[string]any{"id": feedIDs[0]}, map[string]any{"id": feedIDs[1]}},
			},
		}})
	})
	mux.HandleFunc("/api/ratings/get", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("id") == "" {
			writeErr(w, http.StatusBadRequest, "missing id")
			return
		}
		sleepScaled(20*time.Millisecond, scale)
		writeJSON(w, map[string]any{"data": map[string]any{"rating": 4.5, "count": 1234, "filler": pad(3000)}})
	})
	mux.HandleFunc("/img", func(w http.ResponseWriter, r *http.Request) {
		cid := r.URL.Query().Get("cid")
		if cid == "" {
			writeErr(w, http.StatusBadRequest, "missing cid")
			return
		}
		writeImage(w, "wish-thumb-"+cid, wishThumbKB*1000)
	})
	mux.HandleFunc("/product-img", func(w http.ResponseWriter, r *http.Request) {
		cid := r.URL.Query().Get("cid")
		if cid == "" || !known[cid] {
			writeErr(w, http.StatusNotFound, "unknown cid")
			return
		}
		writeImage(w, "wish-img-"+cid, wishImageKB*1000)
	})
	mux.HandleFunc("/prof", func(w http.ResponseWriter, r *http.Request) {
		writeImage(w, "wish-prof-"+r.URL.Query().Get("cid"), 30*1000)
	})
	registerWishExtraRoutes(mux, scale, feedIDs)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("wish: no route %s %s", r.Method, r.URL.Path))
	})
	return mux
}
