package apps

import (
	"net/http"
	"time"

	"appx/internal/air"
	"appx/internal/apk"
)

// Secondary surfaces for the two food-delivery apps. Both gain a search flow
// and a background order-tracking service; Postmates' tracking walks a deep
// successive chain (order → courier → location → zone → ETA) that pushes its
// maximum dependency chain well past what any UI-driven observation sees —
// the paper reports a maximum successive chain of 15 for Postmates, found
// only by static analysis.

// --- DoorDash ---

func buildDoorDashExtras(pb *air.ProgramBuilder) {
	search := pb.Class("DDSearch", air.KindActivity)

	so := search.Method("open", 0)
	creq := so.CallAPI(air.APIHTTPNewRequest, so.ConstStr("GET"))
	so.CallAPI(air.APIHTTPSetURL, creq, so.ConstStr("http://"+ddAPIHost+"/v2/search/cuisines"))
	cresp := so.CallAPI(air.APIHTTPExecute, creq)
	cbody := so.CallAPI(air.APIHTTPRespBody, cresp)
	so.CallAPI(air.APIIntentPut, so.ConstStr("dd.cuisines"), cbody)
	so.CallAPI(air.APIUIRender, so.ConstStr("cuisines"))
	so.Done()

	op := search.Method("onPickCuisine", 1)
	cs := op.CallAPI(air.APIIntentGet, op.ConstStr("dd.cuisines"))
	names := op.CallAPI(air.APIJSONGet, cs, op.ConstStr("cuisines[*].name"))
	name := op.CallAPI(air.APIListGet, names, op.Param(0))
	qreq := op.CallAPI(air.APIHTTPNewRequest, op.ConstStr("GET"))
	op.CallAPI(air.APIHTTPSetURL, qreq, op.ConstStr("http://"+ddAPIHost+"/v2/search"))
	op.CallAPI(air.APIHTTPAddQuery, qreq, op.ConstStr("c"), name)
	op.CallAPI(air.APIHTTPAddQuery, qreq, op.ConstStr("locale"), op.CallAPI(air.APIDeviceLocale))
	op.CallAPI(air.APIHTTPExecute, qreq)
	op.CallAPI(air.APIUIRender, op.ConstStr("search-results"))
	op.Done()

	// Background order tracking: push → active order → status → courier.
	orders := pb.Class("DDOrders", air.KindService)
	onp := orders.Method("onPush", 0)
	areq := onp.CallAPI(air.APIHTTPNewRequest, onp.ConstStr("GET"))
	onp.CallAPI(air.APIHTTPSetURL, areq, onp.ConstStr("http://"+ddAPIHost+"/v2/orders/active"))
	onp.CallAPI(air.APIHTTPAddHeader, areq, onp.ConstStr("Cookie"), onp.CallAPI(air.APIDeviceCookie, onp.ConstStr(ddAPIHost)))
	aresp := onp.CallAPI(air.APIHTTPExecute, areq)
	abody := onp.CallAPI(air.APIHTTPRespBody, aresp)
	oid := onp.CallAPI(air.APIJSONGet, abody, onp.ConstStr("active.order_id"))
	sreq := onp.CallAPI(air.APIHTTPNewRequest, onp.ConstStr("GET"))
	onp.CallAPI(air.APIHTTPSetURL, sreq, onp.ConstStr("http://"+ddAPIHost+"/v2/order/status"))
	onp.CallAPI(air.APIHTTPAddQuery, sreq, onp.ConstStr("oid"), oid)
	sresp := onp.CallAPI(air.APIHTTPExecute, sreq)
	sbody := onp.CallAPI(air.APIHTTPRespBody, sresp)
	courier := onp.CallAPI(air.APIJSONGet, sbody, onp.ConstStr("status.courier_id"))
	onp.Invoke("DDOrders.trackCourier", courier)
	onp.Done()

	tc := orders.Method("trackCourier", 1)
	kreq := tc.CallAPI(air.APIHTTPNewRequest, tc.ConstStr("GET"))
	tc.CallAPI(air.APIHTTPSetURL, kreq, tc.ConstStr("http://"+ddAPIHost+"/v2/courier"))
	tc.CallAPI(air.APIHTTPAddQuery, kreq, tc.ConstStr("cid"), tc.Param(0))
	kresp := tc.CallAPI(air.APIHTTPExecute, kreq)
	kbody := tc.CallAPI(air.APIHTTPRespBody, kresp)
	loc := tc.CallAPI(air.APIJSONGet, kbody, tc.ConstStr("courier.loc_key"))
	lreq := tc.CallAPI(air.APIHTTPNewRequest, tc.ConstStr("GET"))
	tc.CallAPI(air.APIHTTPSetURL, lreq, tc.ConstStr("http://"+ddAPIHost+"/v2/courier/loc"))
	tc.CallAPI(air.APIHTTPAddQuery, lreq, tc.ConstStr("key"), loc)
	tc.CallAPI(air.APIHTTPExecute, lreq)
	tc.Done()
}

func doorDashExtraScreens() (extra []apk.Screen, storesWidgets []apk.Widget) {
	extra = []apk.Screen{
		{Name: "cuisines", Widgets: []apk.Widget{
			{ID: "cuisine", Kind: apk.ListItem, Handler: "DDSearch.onPickCuisine", MaxIndex: 4, Target: "search-results"},
			{ID: "back", Kind: apk.Back},
		}},
		{Name: "search-results", Widgets: []apk.Widget{
			{ID: "back", Kind: apk.Back},
		}},
	}
	storesWidgets = []apk.Widget{
		{ID: "search", Kind: apk.Button, Handler: "DDSearch.open", Target: "cuisines"},
	}
	return
}

func doorDashServiceEntries() []string { return []string{"DDOrders.onPush"} }

func registerDoorDashExtraRoutes(mux *http.ServeMux, scale float64, storeIDs []string) {
	cuisines := []string{"pizza", "sushi", "thai", "burgers"}
	activeOrder := "ord-" + storeIDs[0]

	mux.HandleFunc("/v2/search/cuisines", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(15*time.Millisecond, scale)
		out := make([]any, len(cuisines))
		for i, c := range cuisines {
			out[i] = map[string]any{"name": c}
		}
		writeJSON(w, map[string]any{"cuisines": out})
	})
	mux.HandleFunc("/v2/search", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("c") == "" {
			writeErr(w, http.StatusBadRequest, "missing c")
			return
		}
		sleepScaled(30*time.Millisecond, scale)
		writeJSON(w, map[string]any{"results": []any{storeIDs[0], storeIDs[1]}, "filler": pad(1800)})
	})
	mux.HandleFunc("/v2/orders/active", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(15*time.Millisecond, scale)
		writeJSON(w, map[string]any{"active": map[string]any{"order_id": activeOrder}})
	})
	mux.HandleFunc("/v2/order/status", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("oid") != activeOrder {
			writeErr(w, http.StatusNotFound, "unknown order")
			return
		}
		sleepScaled(15*time.Millisecond, scale)
		writeJSON(w, map[string]any{"status": map[string]any{"stage": "cooking", "courier_id": "cour-7"}})
	})
	mux.HandleFunc("/v2/courier", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("cid") == "" {
			writeErr(w, http.StatusBadRequest, "missing cid")
			return
		}
		sleepScaled(10*time.Millisecond, scale)
		writeJSON(w, map[string]any{"courier": map[string]any{"name": "Sam", "loc_key": "locx-9"}})
	})
	mux.HandleFunc("/v2/courier/loc", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("key") == "" {
			writeErr(w, http.StatusBadRequest, "missing key")
			return
		}
		writeJSON(w, map[string]any{"loc": map[string]any{"lat": 37.5, "lng": 127.0}})
	})
}

// --- Postmates ---

func buildPostmatesExtras(pb *air.ProgramBuilder) {
	search := pb.Class("PMSearch", air.KindActivity)
	so := search.Method("open", 0)
	sreq := so.CallAPI(air.APIHTTPNewRequest, so.ConstStr("GET"))
	so.CallAPI(air.APIHTTPSetURL, sreq, so.ConstStr("http://"+pmAPIHost+"/api/search"))
	so.CallAPI(air.APIHTTPAddQuery, sreq, so.ConstStr("q"), so.ConstStr("nearby"))
	so.CallAPI(air.APIHTTPAddQuery, sreq, so.ConstStr("locale"), so.CallAPI(air.APIDeviceLocale))
	so.CallAPI(air.APIHTTPExecute, sreq)
	so.CallAPI(air.APIUIRender, so.ConstStr("pm-search"))
	so.Done()

	// Background tracking: a six-hop successive chain, each request keyed
	// by a field of the previous response.
	track := pb.Class("PMTrack", air.KindService)

	hop := func(name, path, qkey, respPath, next string) {
		m := track.Method(name, 1)
		req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
		m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://"+pmAPIHost+path))
		m.CallAPI(air.APIHTTPAddQuery, req, m.ConstStr(qkey), m.Param(0))
		resp := m.CallAPI(air.APIHTTPExecute, req)
		if next != "" {
			body := m.CallAPI(air.APIHTTPRespBody, resp)
			v := m.CallAPI(air.APIJSONGet, body, m.ConstStr(respPath))
			m.Invoke("PMTrack."+next, v)
		}
		m.Done()
	}
	// Declare deepest-first so invokes resolve.
	hop("eta", "/api/eta", "key", "", "")
	hop("zone", "/api/zone", "zid", "zone.eta_key", "eta")
	hop("locate", "/api/courier/loc", "lid", "loc.zone_id", "zone")
	hop("courier", "/api/courier", "cid", "courier.loc_id", "locate")
	hop("order", "/api/order", "oid", "order.courier_id", "courier")

	onp := track.Method("onPush", 0)
	areq := onp.CallAPI(air.APIHTTPNewRequest, onp.ConstStr("GET"))
	onp.CallAPI(air.APIHTTPSetURL, areq, onp.ConstStr("http://"+pmAPIHost+"/api/orders/active"))
	onp.CallAPI(air.APIHTTPAddHeader, areq, onp.ConstStr("Cookie"), onp.CallAPI(air.APIDeviceCookie, onp.ConstStr(pmAPIHost)))
	aresp := onp.CallAPI(air.APIHTTPExecute, areq)
	abody := onp.CallAPI(air.APIHTTPRespBody, aresp)
	oid := onp.CallAPI(air.APIJSONGet, abody, onp.ConstStr("active.order_id"))
	onp.Invoke("PMTrack.order", oid)
	onp.Done()
}

func postmatesExtraScreens() (extra []apk.Screen, feedWidgets []apk.Widget) {
	extra = []apk.Screen{
		{Name: "pm-search", Widgets: []apk.Widget{
			{ID: "back", Kind: apk.Back},
		}},
	}
	feedWidgets = []apk.Widget{
		{ID: "search", Kind: apk.Button, Handler: "PMSearch.open", Target: "pm-search"},
	}
	return
}

func postmatesServiceEntries() []string { return []string{"PMTrack.onPush"} }

func registerPostmatesExtraRoutes(mux *http.ServeMux, scale float64, restIDs []string) {
	activeOrder := "ord-" + restIDs[0]
	mux.HandleFunc("/api/search", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("q") == "" {
			writeErr(w, http.StatusBadRequest, "missing q")
			return
		}
		sleepScaled(120*time.Millisecond, scale)
		writeJSON(w, map[string]any{"results": []any{restIDs[0], restIDs[2]}, "filler": pad(900)})
	})
	mux.HandleFunc("/api/orders/active", func(w http.ResponseWriter, r *http.Request) {
		sleepScaled(20*time.Millisecond, scale)
		writeJSON(w, map[string]any{"active": map[string]any{"order_id": activeOrder}})
	})
	mux.HandleFunc("/api/order", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("oid") != activeOrder {
			writeErr(w, http.StatusNotFound, "unknown order")
			return
		}
		writeJSON(w, map[string]any{"order": map[string]any{"courier_id": "pmc-3"}})
	})
	mux.HandleFunc("/api/courier", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("cid") == "" {
			writeErr(w, http.StatusBadRequest, "missing cid")
			return
		}
		writeJSON(w, map[string]any{"courier": map[string]any{"loc_id": "pml-8"}})
	})
	mux.HandleFunc("/api/courier/loc", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("lid") == "" {
			writeErr(w, http.StatusBadRequest, "missing lid")
			return
		}
		writeJSON(w, map[string]any{"loc": map[string]any{"zone_id": "pmz-2"}})
	})
	mux.HandleFunc("/api/zone", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("zid") == "" {
			writeErr(w, http.StatusBadRequest, "missing zid")
			return
		}
		writeJSON(w, map[string]any{"zone": map[string]any{"eta_key": "pme-1"}})
	})
	mux.HandleFunc("/api/eta", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("key") == "" {
			writeErr(w, http.StatusBadRequest, "missing key")
			return
		}
		writeJSON(w, map[string]any{"eta": map[string]any{"minutes": 17}})
	})
}
