// Package device emulates the evaluation handset (a Google Nexus 6 in the
// paper): it installs an app package, drives its UI handlers through the AIR
// interpreter, talks HTTP over an emulated 4G access link, and measures
// user-perceived latency — the time from the user input that triggers an
// interaction until the final screen render (§6: measured with Frida in the
// paper; here the runtime itself timestamps the boundary).
//
// The measurement decomposes into the same two slices as Figures 13/14:
// processing delay (the per-screen render/compute cost, emulated as a
// configured sleep) and network delay (everything else: request round trips
// over the shaped links).
package device

import (
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"appx/internal/apk"
	"appx/internal/httpmsg"
	"appx/internal/interp"
	"appx/internal/netem"
)

// Config describes one emulated device.
type Config struct {
	// APK is the installed application package.
	APK *apk.APK
	// RenderDelay charges per-screen client processing (at Scale 1).
	RenderDelay map[string]time.Duration
	// Scale compresses all emulated delays (1 = paper-real time).
	Scale float64
	// ProxyAddr routes all HTTP through the given forward proxy
	// ("host:port"). Required unless Transport is set — the evaluation
	// always interposes the proxy (with prefetching on or off).
	ProxyAddr string
	// Transport, when set, replaces the networked HTTP client entirely
	// (in-process analysis and fuzzing runs).
	Transport interp.Transport
	// ClientLink shapes the device↔proxy hop (55 ms / 25 Mbps in §6.2),
	// already scaled by the caller.
	ClientLink netem.Link
	// Props are the run-time device properties.
	Props interp.DeviceProps
	// User tags this device's traffic for per-user proxy state; it is sent
	// as the X-Appx-User header and used by experiment labs as the proxy's
	// user key.
	User string
}

// Measure is one interaction's latency breakdown.
type Measure struct {
	// Screen is the screen rendered at the end of the interaction.
	Screen string
	// Total is the user-perceived latency.
	Total time.Duration
	// Processing is the render/compute slice.
	Processing time.Duration
	// Network is Total - Processing.
	Network time.Duration
	// Bytes is the response payload volume received during the interaction.
	Bytes int64
	// Transactions counts HTTP round trips during the interaction.
	Transactions int
}

// Device is one emulated handset running one app.
type Device struct {
	cfg Config
	env *interp.Env

	mu         sync.Mutex
	screens    []string
	processing time.Duration
	bytes      int64
	txns       int
}

// New installs the app on a fresh device.
func New(cfg Config) (*Device, error) {
	if cfg.APK == nil {
		return nil, fmt.Errorf("device: no apk")
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.ProxyAddr == "" && cfg.Transport == nil {
		return nil, fmt.Errorf("device: no proxy address")
	}
	d := &Device{cfg: cfg}

	if cfg.Transport != nil {
		inner := cfg.Transport
		d.env = interp.NewEnv(cfg.APK.Program, interp.TransportFunc(func(r *httpmsg.Request) (*httpmsg.Response, error) {
			resp, err := inner.RoundTrip(r)
			if err != nil {
				return nil, err
			}
			d.mu.Lock()
			d.bytes += int64(len(resp.Body))
			d.txns++
			d.mu.Unlock()
			return resp, nil
		}), cfg.Props)
		d.env.Hooks.OnRender = d.onRender
		return d, nil
	}

	proxyURL := &url.URL{Scheme: "http", Host: cfg.ProxyAddr}
	dialer := &netem.Dialer{Link: cfg.ClientLink, Timeout: 10 * time.Second}
	tr := &http.Transport{
		Proxy:               http.ProxyURL(proxyURL),
		DialContext:         dialer.DialContext,
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     30 * time.Second,
		DisableCompression:  true,
	}
	client := &http.Client{Transport: tr, Timeout: 120 * time.Second}

	d.env = interp.NewEnv(cfg.APK.Program, interp.TransportFunc(func(r *httpmsg.Request) (*httpmsg.Response, error) {
		hreq, err := r.ToHTTP()
		if err != nil {
			return nil, err
		}
		hreq.Host = r.Host
		if cfg.User != "" {
			hreq.Header.Set("X-Appx-User", cfg.User)
		}
		hresp, err := client.Do(hreq)
		if err != nil {
			return nil, err
		}
		resp, err := httpmsg.FromHTTPResponse(hresp)
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		d.bytes += int64(len(resp.Body))
		d.txns++
		d.mu.Unlock()
		return resp, nil
	}), cfg.Props)

	d.env.Hooks.OnRender = d.onRender
	return d, nil
}

func (d *Device) onRender(screen string) {
	delay := time.Duration(float64(d.cfg.RenderDelay[screen]) * d.cfg.Scale)
	if delay > 0 {
		time.Sleep(delay)
	}
	d.mu.Lock()
	d.processing += delay
	if n := len(d.screens); n == 0 || d.screens[n-1] != screen {
		d.screens = append(d.screens, screen)
	}
	d.mu.Unlock()
}

// Screen reports the currently displayed screen ("" before launch).
func (d *Device) Screen() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.screens) == 0 {
		return ""
	}
	return d.screens[len(d.screens)-1]
}

// Back pops the screen stack (no handler runs, matching a cheap fragment
// pop). It reports whether there was a screen to go back from.
func (d *Device) Back() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.screens) < 2 {
		return false
	}
	d.screens = d.screens[:len(d.screens)-1]
	return true
}

// run invokes a handler and measures the interaction.
func (d *Device) run(handler string, args ...interp.Value) (Measure, error) {
	d.mu.Lock()
	d.processing = 0
	startBytes, startTxns := d.bytes, d.txns
	d.mu.Unlock()

	start := time.Now()
	_, err := d.env.Call(handler, args...)
	total := time.Since(start)
	if err != nil {
		return Measure{}, fmt.Errorf("device: %s: %w", handler, err)
	}

	d.mu.Lock()
	m := Measure{
		Screen:       d.currentLocked(),
		Total:        total,
		Processing:   d.processing,
		Network:      total - d.processing,
		Bytes:        d.bytes - startBytes,
		Transactions: d.txns - startTxns,
	}
	d.mu.Unlock()
	if m.Network < 0 {
		m.Network = 0
	}
	return m, nil
}

func (d *Device) currentLocked() string {
	if len(d.screens) == 0 {
		return ""
	}
	return d.screens[len(d.screens)-1]
}

// Launch starts the app and measures the launch interaction (Figure 14's
// metric: execute → all launch content on screen).
func (d *Device) Launch() (Measure, error) {
	return d.run(d.cfg.APK.Manifest.LaunchHandler)
}

// Tap activates a widget on the current screen. ListItem widgets take the
// position argument; Button widgets ignore it; Back pops the screen stack.
func (d *Device) Tap(widgetID string, index int) (Measure, error) {
	screen := d.Screen()
	sc := d.cfg.APK.Screen(screen)
	if sc == nil {
		return Measure{}, fmt.Errorf("device: no current screen (launch first)")
	}
	for _, w := range sc.Widgets {
		if w.ID != widgetID {
			continue
		}
		switch w.Kind {
		case apk.Back:
			d.Back()
			return Measure{Screen: d.Screen()}, nil
		case apk.Button:
			return d.run(w.Handler)
		case apk.ListItem:
			if index < 0 || index >= w.MaxIndex {
				return Measure{}, fmt.Errorf("device: index %d out of range for %s/%s", index, screen, widgetID)
			}
			return d.run(w.Handler, fmt.Sprintf("%d", index))
		}
	}
	return Measure{}, fmt.Errorf("device: no widget %q on screen %q", widgetID, screen)
}

// TapMain activates the app's main-interaction widget (Table 1) with the
// given list position.
func (d *Device) TapMain(index int) (Measure, error) {
	_, w := d.cfg.APK.MainWidget()
	if w == nil {
		return Measure{}, fmt.Errorf("device: app has no main widget")
	}
	return d.Tap(w.ID, index)
}

// Env exposes the underlying interpreter environment (tests and the fuzzer
// drive handlers directly through it).
func (d *Device) Env() *interp.Env { return d.env }

// OnTransaction registers an observer for every HTTP transaction the app
// performs (trace capture, Table-3 methodology).
func (d *Device) OnTransaction(fn func(*httpmsg.Transaction)) {
	d.env.Hooks.OnTransaction = fn
}
