package device_test

import (
	"appx/internal/device"
	"testing"
	"time"

	"appx/internal/apps"
	"appx/internal/lab"
)

// newLab spins up a fast-scaled lab for device tests.
func newLab(t *testing.T, prefetch bool) *lab.Lab {
	t.Helper()
	l, err := lab.New(lab.Options{App: apps.Postmates(), Scale: 0.02, Prefetch: prefetch})
	if err != nil {
		t.Fatalf("lab.New: %v", err)
	}
	t.Cleanup(l.Close)
	return l
}

func TestLaunchAndMainInteraction(t *testing.T) {
	l := newLab(t, false)
	d, err := l.NewDevice("u1")
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	m, err := d.Launch()
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if m.Screen != "feed" {
		t.Fatalf("screen after launch = %q", m.Screen)
	}
	if m.Transactions != 1+8 {
		t.Fatalf("launch transactions = %d, want 9", m.Transactions)
	}
	// 8 restaurant images at 168 KB each dominate the payload.
	if m.Bytes < 8*168_000 {
		t.Fatalf("launch bytes = %d", m.Bytes)
	}
	if m.Processing <= 0 || m.Network <= 0 || m.Total < m.Processing {
		t.Fatalf("measure breakdown wrong: %+v", m)
	}

	mm, err := d.TapMain(2)
	if err != nil {
		t.Fatalf("TapMain: %v", err)
	}
	if mm.Screen != "restaurant" {
		t.Fatalf("screen after main = %q", mm.Screen)
	}
	if mm.Transactions != 2 {
		t.Fatalf("main transactions = %d, want 2", mm.Transactions)
	}

	if !d.Back() {
		t.Fatal("Back failed")
	}
	if d.Screen() != "feed" {
		t.Fatalf("screen after back = %q", d.Screen())
	}
}

func TestTapErrors(t *testing.T) {
	l := newLab(t, false)
	d, err := l.NewDevice("u1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Tap("restaurant", 0); err == nil {
		t.Fatal("tap before launch accepted")
	}
	if _, err := d.Launch(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Tap("nope", 0); err == nil {
		t.Fatal("unknown widget accepted")
	}
	if _, err := d.Tap("restaurant", 999); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestNetworkDelayRespondsToRTT(t *testing.T) {
	// Same app, two labs differing only in proxy↔origin RTT; the slower lab
	// must measure a longer network slice for the main interaction.
	mkLab := func(rtt time.Duration) time.Duration {
		l, err := lab.New(lab.Options{App: apps.Postmates(), Scale: 0.1, Prefetch: false, ProxyOriginRTT: rtt})
		if err != nil {
			t.Fatalf("lab.New: %v", err)
		}
		defer l.Close()
		d, err := l.NewDevice("u")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Launch(); err != nil {
			t.Fatal(err)
		}
		m, err := d.TapMain(0)
		if err != nil {
			t.Fatal(err)
		}
		return m.Network
	}
	fast := mkLab(20 * time.Millisecond)
	slow := mkLab(400 * time.Millisecond)
	if slow <= fast {
		t.Fatalf("network delay insensitive to RTT: fast=%v slow=%v", fast, slow)
	}
}

func TestPrefetchingReducesMainInteractionLatency(t *testing.T) {
	// The headline effect, end to end over real sockets: with prefetching,
	// a repeat main interaction is faster than without.
	run := func(prefetch bool) time.Duration {
		l, err := lab.New(lab.Options{App: apps.DoorDash(), Scale: 0.1, Prefetch: prefetch})
		if err != nil {
			t.Fatalf("lab.New: %v", err)
		}
		defer l.Close()
		d, err := l.NewDevice("u")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Launch(); err != nil {
			t.Fatal(err)
		}
		// Warm-up interaction teaches the proxy the run-time values.
		if _, err := d.TapMain(0); err != nil {
			t.Fatal(err)
		}
		d.Back()
		l.Proxy.Drain()
		m, err := d.TapMain(3)
		if err != nil {
			t.Fatal(err)
		}
		return m.Network
	}
	orig := run(false)
	appx := run(true)
	if appx >= orig {
		t.Fatalf("prefetching did not reduce network delay: orig=%v appx=%v", orig, appx)
	}
	// The reduction should be substantial (the store interaction is three
	// serial RTTs at 145 ms each, scaled).
	if float64(appx) > 0.8*float64(orig) {
		t.Fatalf("reduction too small: orig=%v appx=%v", orig, appx)
	}
}

func TestBackWidgetViaTap(t *testing.T) {
	l := newLab(t, false)
	d, err := l.NewDevice("u")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TapMain(0); err != nil {
		t.Fatal(err)
	}
	m, err := d.Tap("back", 0)
	if err != nil {
		t.Fatalf("back tap: %v", err)
	}
	if m.Screen != "feed" || d.Screen() != "feed" {
		t.Fatalf("screen after back = %q / %q", m.Screen, d.Screen())
	}
	// Back at the root is a no-op.
	if d.Back() {
		t.Fatal("Back succeeded at root")
	}
}

func TestScreenStackDeduplicatesRerender(t *testing.T) {
	// Re-rendering the same screen (pull-to-refresh style) must not grow
	// the back stack.
	l := newLab(t, false)
	d, err := l.NewDevice("u")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(); err != nil { // relaunch renders "feed" again
		t.Fatal(err)
	}
	if d.Back() {
		t.Fatal("duplicate render grew the screen stack")
	}
}

func TestDeviceConfigValidation(t *testing.T) {
	if _, err := device.New(device.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := device.New(device.Config{APK: apps.Wish().APK}); err == nil {
		t.Fatal("config without proxy or transport accepted")
	}
}
