package httpmsg

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
)

func newBufReader(r io.Reader) *bufio.Reader { return bufio.NewReader(r) }

func sampleRequest() *Request {
	return &Request{
		Method: "POST",
		Scheme: "http",
		Host:   "wish.example",
		Path:   "/product/get",
		Query:  []Field{{Key: "v", Value: "2"}},
		Header: []Field{
			{Key: "Cookie", Value: "e8d5"},
			{Key: "User-Agent", Value: "Mozilla/5.0"},
		},
		BodyKind: BodyForm,
		BodyForm: []Field{
			{Key: "cid", Value: "556e"},
			{Key: "_client", Value: "android"},
		},
	}
}

func TestCanonicalKeyDeterministic(t *testing.T) {
	a, b := sampleRequest(), sampleRequest()
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("identical requests produced different keys")
	}
}

func TestCanonicalKeyOrderInsensitive(t *testing.T) {
	a := sampleRequest()
	b := sampleRequest()
	b.Header[0], b.Header[1] = b.Header[1], b.Header[0]
	b.BodyForm[0], b.BodyForm[1] = b.BodyForm[1], b.BodyForm[0]
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("field order changed the canonical key")
	}
}

func TestCanonicalKeySensitivity(t *testing.T) {
	base := sampleRequest().CanonicalKey()
	mutations := []func(*Request){
		func(r *Request) { r.Method = "GET" },
		func(r *Request) { r.Host = "other.example" },
		func(r *Request) { r.Path = "/related/get" },
		func(r *Request) { r.SetQuery("v", "3") },
		func(r *Request) { r.SetHeader("Cookie", "ffff") },
		func(r *Request) { r.SetForm("cid", "zzzz") },
		func(r *Request) { r.SetForm("extra", "1") },
		func(r *Request) { r.DeleteForm("cid") },
	}
	for i, mut := range mutations {
		r := sampleRequest()
		mut(r)
		if r.CanonicalKey() == base {
			t.Errorf("mutation %d did not change the canonical key", i)
		}
	}
}

func TestCanonicalKeyIgnoresHopByHop(t *testing.T) {
	a := sampleRequest()
	b := sampleRequest()
	b.Header = append(b.Header, Field{Key: "Content-Length", Value: "42"})
	b.Header = append(b.Header, Field{Key: "Accept-Encoding", Value: "gzip"})
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("hop-by-hop headers changed the canonical key")
	}
}

func TestCanonicalKeyJSONBody(t *testing.T) {
	a := &Request{Method: "POST", Host: "h", Path: "/p", BodyKind: BodyJSON,
		BodyJSON: map[string]any{"b": float64(1), "a": "x"}}
	b := &Request{Method: "POST", Host: "h", Path: "/p", BodyKind: BodyJSON,
		BodyJSON: map[string]any{"a": "x", "b": float64(1)}}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("JSON key order changed the canonical key")
	}
	c := &Request{Method: "POST", Host: "h", Path: "/p", BodyKind: BodyJSON,
		BodyJSON: map[string]any{"a": "x", "b": float64(2)}}
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Fatal("JSON value change did not change the canonical key")
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	orig := sampleRequest()
	hreq, err := orig.ToHTTP()
	if err != nil {
		t.Fatalf("ToHTTP: %v", err)
	}
	// Simulate server-side capture.
	rec := httptest.NewRecorder()
	var captured *Request
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		captured, err = FromHTTP(r)
		if err != nil {
			t.Fatalf("FromHTTP: %v", err)
		}
		w.WriteHeader(200)
	})
	h.ServeHTTP(rec, toServerShape(t, hreq))
	if captured == nil {
		t.Fatal("handler did not run")
	}
	if captured.CanonicalKey() != orig.CanonicalKey() {
		t.Fatalf("canonical key changed over the wire:\norig %+v\ngot  %+v", orig, captured)
	}
	if v, ok := captured.GetForm("cid"); !ok || v != "556e" {
		t.Fatalf("form field lost: %q %v", v, ok)
	}
}

// toServerShape re-reads a client-shaped request as a server would see it.
func toServerShape(t *testing.T, req *http.Request) *http.Request {
	t.Helper()
	var buf bytes.Buffer
	if err := req.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	sreq, err := http.ReadRequest(newBufReader(&buf))
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	return sreq
}

func TestFromHTTPJSONBody(t *testing.T) {
	hreq, _ := http.NewRequest("POST", "http://h/p", strings.NewReader(`{"k":"v"}`))
	hreq.Header.Set("Content-Type", "application/json")
	r, err := FromHTTP(hreq)
	if err != nil {
		t.Fatalf("FromHTTP: %v", err)
	}
	if r.BodyKind != BodyJSON {
		t.Fatalf("BodyKind = %v, want json", r.BodyKind)
	}
	m, ok := r.BodyJSON.(map[string]any)
	if !ok || m["k"] != "v" {
		t.Fatalf("BodyJSON = %v", r.BodyJSON)
	}
}

func TestFromHTTPRawBodyFallback(t *testing.T) {
	hreq, _ := http.NewRequest("POST", "http://h/p", strings.NewReader("\x00binary"))
	hreq.Header.Set("Content-Type", "image/jpeg")
	r, err := FromHTTP(hreq)
	if err != nil {
		t.Fatalf("FromHTTP: %v", err)
	}
	if r.BodyKind != BodyRaw || string(r.BodyRaw) != "\x00binary" {
		t.Fatalf("raw body not preserved: %v %q", r.BodyKind, r.BodyRaw)
	}
}

func TestHeaderAccessors(t *testing.T) {
	r := sampleRequest()
	if v, ok := r.GetHeader("cookie"); !ok || v != "e8d5" {
		t.Fatalf("GetHeader case-insensitive failed: %q %v", v, ok)
	}
	r.SetHeader("Cookie", "new")
	if v, _ := r.GetHeader("Cookie"); v != "new" {
		t.Fatalf("SetHeader replace failed: %q", v)
	}
	r.SetHeader("X-New", "1")
	if v, ok := r.GetHeader("X-New"); !ok || v != "1" {
		t.Fatalf("SetHeader append failed: %q %v", v, ok)
	}
}

func TestQueryAccessors(t *testing.T) {
	r := sampleRequest()
	if v, ok := r.GetQuery("v"); !ok || v != "2" {
		t.Fatalf("GetQuery: %q %v", v, ok)
	}
	r.SetQuery("v", "9")
	if v, _ := r.GetQuery("v"); v != "9" {
		t.Fatal("SetQuery replace failed")
	}
	if _, ok := r.GetQuery("zz"); ok {
		t.Fatal("GetQuery found missing key")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := sampleRequest()
	r.BodyKind = BodyJSON
	r.BodyJSON = map[string]any{"nested": map[string]any{"x": float64(1)}}
	c := r.Clone()
	c.SetHeader("Cookie", "changed")
	c.BodyJSON.(map[string]any)["nested"].(map[string]any)["x"] = float64(2)
	if v, _ := r.GetHeader("Cookie"); v != "e8d5" {
		t.Fatal("Clone shares header storage")
	}
	if r.BodyJSON.(map[string]any)["nested"].(map[string]any)["x"] != float64(1) {
		t.Fatal("Clone shares JSON storage")
	}
}

func TestResponseJSONCache(t *testing.T) {
	resp := &Response{Status: 200, Body: []byte(`{"a":1}`)}
	v1, err := resp.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	v2, _ := resp.JSON()
	if &v1 == nil || v1.(map[string]any)["a"] != float64(1) {
		t.Fatalf("JSON = %v", v1)
	}
	if v2.(map[string]any)["a"] != float64(1) {
		t.Fatal("cached JSON differs")
	}
}

func TestResponseWriteTo(t *testing.T) {
	resp := &Response{
		Status: 201,
		Header: []Field{{Key: "X-A", Value: "1"}, {Key: "Set-Cookie", Value: "s=1"}},
		Body:   []byte("hello"),
	}
	rec := httptest.NewRecorder()
	if err := resp.WriteTo(rec); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if rec.Code != 201 || rec.Body.String() != "hello" || rec.Header().Get("X-A") != "1" {
		t.Fatalf("written response wrong: %d %q", rec.Code, rec.Body.String())
	}
}

// Property: the canonical key is invariant under random permutations of the
// form fields.
func TestCanonicalKeyPermutationProperty(t *testing.T) {
	f := func(seedKeys []uint8) bool {
		if len(seedKeys) == 0 {
			return true
		}
		if len(seedKeys) > 12 {
			seedKeys = seedKeys[:12]
		}
		r := &Request{Method: "POST", Host: "h", Path: "/p", BodyKind: BodyForm}
		for i, k := range seedKeys {
			r.BodyForm = append(r.BodyForm, Field{Key: string(rune('a' + k%16)), Value: string(rune('0' + i%10))})
		}
		base := r.CanonicalKey()
		rev := r.Clone()
		for i, j := 0, len(rev.BodyForm)-1; i < j; i, j = i+1, j-1 {
			rev.BodyForm[i], rev.BodyForm[j] = rev.BodyForm[j], rev.BodyForm[i]
		}
		return rev.CanonicalKey() == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestURLEncoding(t *testing.T) {
	r := &Request{Method: "GET", Host: "h.example", Path: "/api/merchant",
		Query: []Field{{Key: "m", Value: "Silk Road"}}}
	u := r.URL()
	if u != "http://h.example/api/merchant?m=Silk+Road" {
		t.Fatalf("URL = %q", u)
	}
}

func TestBodyKindString(t *testing.T) {
	if BodyForm.String() != "form" || BodyJSON.String() != "json" || BodyNone.String() != "none" || BodyRaw.String() != "raw" {
		t.Fatal("BodyKind strings wrong")
	}
}

func TestDeleteHeader(t *testing.T) {
	r := sampleRequest()
	r.Header = append(r.Header, Field{Key: "X-Appx-User", Value: "u1"})
	r.Header = append(r.Header, Field{Key: "x-appx-user", Value: "u2"})
	r.DeleteHeader("X-Appx-User")
	if _, ok := r.GetHeader("X-Appx-User"); ok {
		t.Fatal("DeleteHeader left values behind")
	}
	if _, ok := r.GetHeader("Cookie"); !ok {
		t.Fatal("DeleteHeader removed unrelated header")
	}
}

func TestServeViaHandler(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Host != "logical.example" {
			t.Errorf("host = %q", r.Host)
		}
		if got := r.URL.Query().Get("k"); got != "v" {
			t.Errorf("query k = %q", got)
		}
		w.Header().Set("X-Served", "1")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte("payload"))
	})
	resp, err := ServeViaHandler(h, &Request{
		Method: "GET", Host: "logical.example", Path: "/p",
		Query: []Field{{Key: "k", Value: "v"}},
	})
	if err != nil {
		t.Fatalf("ServeViaHandler: %v", err)
	}
	if resp.Status != http.StatusAccepted || string(resp.Body) != "payload" {
		t.Fatalf("resp = %d %q", resp.Status, resp.Body)
	}
	if v, ok := resp.GetHeader("X-Served"); !ok || v != "1" {
		t.Fatalf("header = %q %v", v, ok)
	}
}

func TestServeViaHandlerDefaultsOK(t *testing.T) {
	// A handler that writes without WriteHeader gets an implicit 200.
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	resp, err := ServeViaHandler(h, &Request{Method: "GET", Host: "h", Path: "/"})
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
}

func TestCanonicalKeyMemoized(t *testing.T) {
	r := sampleRequest()
	k1 := r.CanonicalKey()
	if r.ckey == "" {
		t.Fatal("key not memoized")
	}
	if k2 := r.CanonicalKey(); k2 != k1 {
		t.Fatalf("memoized key differs: %q vs %q", k2, k1)
	}
	// The memo must equal a fresh computation on an identical request.
	if fresh := sampleRequest().CanonicalKey(); fresh != k1 {
		t.Fatal("memoized key differs from fresh computation")
	}
}

func TestCanonicalKeyMemoInvalidatedByMutators(t *testing.T) {
	muts := []struct {
		name string
		f    func(*Request)
	}{
		{"SetQuery", func(r *Request) { r.SetQuery("v", "3") }},
		{"SetHeader", func(r *Request) { r.SetHeader("Cookie", "ffff") }},
		{"DeleteHeader", func(r *Request) { r.DeleteHeader("Cookie") }},
		{"SetForm", func(r *Request) { r.SetForm("cid", "zzzz") }},
		{"DeleteForm", func(r *Request) { r.DeleteForm("cid") }},
	}
	for _, m := range muts {
		r := sampleRequest()
		before := r.CanonicalKey()
		m.f(r)
		if after := r.CanonicalKey(); after == before {
			t.Errorf("%s: stale memoized key survived the mutation", m.name)
		}
	}
}

func TestCloneDropsKeyMemo(t *testing.T) {
	r := sampleRequest()
	base := r.CanonicalKey()
	c := r.Clone()
	if c.ckey != "" {
		t.Fatal("Clone carried the key memo")
	}
	// Mutating the clone via direct field assignment (allowed on a fresh
	// clone) must not be able to resurrect the parent's key.
	c.Path = "/other"
	if c.CanonicalKey() == base {
		t.Fatal("clone key identical after mutation")
	}
	if r.CanonicalKey() != base {
		t.Fatal("parent key changed by clone mutation")
	}
}
