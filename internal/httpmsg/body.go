package httpmsg

import (
	"errors"
	"io"
	"net/http"
	"sync"
)

// ErrBodyTooLarge is returned when a body exceeds a configured cap:
// FromHTTPLimited for request bodies, Buffer for response bodies.
var ErrBodyTooLarge = errors.New("httpmsg: body exceeds configured limit")

var (
	errStreamingJSON = errors.New("httpmsg: JSON on streaming response (Buffer first)")
	errTruncatedJSON = errors.New("httpmsg: JSON on truncated body capture")
)

// DrainMax bounds how much of an unwanted body DrainAndClose will consume
// before giving up and closing. Past this, tearing the connection down is
// cheaper than reading to EOF for keep-alive reuse.
const DrainMax = 1 << 20

// bodyStream is the streaming body representation behind a Response.
type bodyStream struct {
	rc      io.ReadCloser
	closed  bool
	onClose []func()
}

// SetStream attaches a streaming body to the response. The response becomes
// streaming: WriteTo copies from rc, and Buffer/CloseBody consume it.
func (r *Response) SetStream(rc io.ReadCloser) {
	r.stream = &bodyStream{rc: rc}
}

// Streaming reports whether the body is an unconsumed stream.
func (r *Response) Streaming() bool { return r.stream != nil && !r.stream.closed }

// Stream returns the underlying body reader, or nil for buffered responses.
func (r *Response) Stream() io.Reader {
	if r.stream == nil {
		return nil
	}
	return r.stream.rc
}

// OnBodyClose registers f to run exactly once when the streaming body is
// closed (by CloseBody, Buffer, WriteTo, or DrainAndClose). Layers that must
// keep resources alive for the lifetime of the body — a retrier's attempt
// context, a pooled connection — hang their cleanup here. On a buffered
// response f runs immediately: there is no stream left to wait for.
func (r *Response) OnBodyClose(f func()) {
	if r.stream == nil || r.stream.closed {
		f()
		return
	}
	r.stream.onClose = append(r.stream.onClose, f)
}

// CloseBody closes a streaming body without consuming it and fires the
// OnBodyClose callbacks. Safe to call multiple times and on buffered
// responses.
func (r *Response) CloseBody() error {
	if r.stream == nil || r.stream.closed {
		return nil
	}
	r.stream.closed = true
	err := r.stream.rc.Close()
	for _, f := range r.stream.onClose {
		f()
	}
	r.stream.onClose = nil
	return err
}

// DrainAndClose discards the remaining streamed body (bounded by DrainMax)
// and closes it, so the transport can reuse the connection. It returns the
// first drain or close error. Buffered responses are a no-op.
func (r *Response) DrainAndClose() error {
	if r.stream == nil || r.stream.closed {
		return nil
	}
	_, derr := io.Copy(io.Discard, io.LimitReader(r.stream.rc, DrainMax))
	cerr := r.CloseBody()
	if derr != nil {
		return derr
	}
	return cerr
}

// DrainAndClose is the shared bounded drain helper for raw response bodies
// (e.g. *http.Response from probe or relay clients): read up to DrainMax
// then close, returning the first error instead of discarding it.
func DrainAndClose(rc io.ReadCloser) error {
	if rc == nil {
		return nil
	}
	_, derr := io.Copy(io.Discard, io.LimitReader(rc, DrainMax))
	cerr := rc.Close()
	if derr != nil {
		return derr
	}
	return cerr
}

// Buffer consumes the streaming body into Body, converting the response to
// buffered form. When maxBytes > 0 and the body exceeds it, the capture is
// dropped, the body is closed, the response is marked truncated, and
// ErrBodyTooLarge is returned. No-op on buffered responses.
func (r *Response) Buffer(maxBytes int64) error {
	if r.stream == nil || r.stream.closed {
		return nil
	}
	src := io.Reader(r.stream.rc)
	if maxBytes > 0 {
		src = io.LimitReader(r.stream.rc, maxBytes+1)
	}
	b, rerr := io.ReadAll(src)
	cerr := r.CloseBody()
	if rerr != nil {
		return rerr
	}
	if maxBytes > 0 && int64(len(b)) > maxBytes {
		r.trunc = true
		return ErrBodyTooLarge
	}
	r.Body = b
	if cerr != nil {
		return cerr
	}
	return nil
}

// BodyComplete reports whether Body holds the complete entity: buffered and
// never truncated by a capture cap.
func (r *Response) BodyComplete() bool { return !r.Streaming() && !r.trunc }

// BodyLen returns the buffered body length (0 for an unconsumed stream).
func (r *Response) BodyLen() int { return len(r.Body) }

// Truncated reports whether a Buffer cap discarded the body mid-read.
func (r *Response) Truncated() bool { return r.trunc }

// MarkTruncated flags the response as holding an incomplete capture, so
// BodyComplete consumers (learning, persistence) skip it.
func (r *Response) MarkTruncated() { r.trunc = true }

// FromHTTPResponseStreaming wraps a *http.Response without reading its body:
// the returned Response is streaming and the caller owns the body via
// WriteTo / Buffer / DrainAndClose / CloseBody.
func FromHTTPResponseStreaming(resp *http.Response) *Response {
	out := &Response{Status: resp.StatusCode}
	for _, key := range sortedHeaderKeys(resp.Header) {
		for _, v := range resp.Header[key] {
			out.Header = append(out.Header, Field{Key: key, Value: v})
		}
	}
	if resp.Body != nil {
		out.SetStream(resp.Body)
	}
	return out
}

// copyBufPool supplies the 32 KiB transfer buffers WriteTo and copyPooled
// use for stream copies, so the relay path allocates no per-request buffer.
var copyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

func copyPooled(dst io.Writer, src io.Reader) (int64, error) {
	bp := copyBufPool.Get().(*[]byte)
	// CopyBuffer prefers src's WriterTo when present (the spool reader's
	// zero-copy path); the pooled buffer covers plain readers.
	n, err := io.CopyBuffer(dst, src, *bp)
	copyBufPool.Put(bp)
	return n, err
}

// flushedWriter flushes after every write; WriteTo wraps flushable
// ResponseWriters in it for streaming bodies.
type flushedWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushedWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if n > 0 {
		fw.f.Flush()
	}
	return n, err
}
