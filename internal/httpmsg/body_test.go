package httpmsg

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type trackingBody struct {
	io.Reader
	closed  bool
	readErr error
}

func (t *trackingBody) Read(p []byte) (int, error) {
	if t.readErr != nil {
		return 0, t.readErr
	}
	return t.Reader.Read(p)
}

func (t *trackingBody) Close() error { t.closed = true; return nil }

func streamingResp(body string) (*Response, *trackingBody) {
	tb := &trackingBody{Reader: strings.NewReader(body)}
	r := &Response{Status: 200}
	r.SetStream(tb)
	return r, tb
}

func TestStreamingLifecycle(t *testing.T) {
	r, tb := streamingResp("hello world")
	if !r.Streaming() {
		t.Fatal("want streaming")
	}
	var fired int
	r.OnBodyClose(func() { fired++ })
	if err := r.Buffer(0); err != nil {
		t.Fatal(err)
	}
	if r.Streaming() || !tb.closed || fired != 1 {
		t.Fatalf("after Buffer: streaming=%v closed=%v fired=%d", r.Streaming(), tb.closed, fired)
	}
	if string(r.Body) != "hello world" || !r.BodyComplete() {
		t.Fatalf("body %q complete=%v", r.Body, r.BodyComplete())
	}
	// Callbacks registered after close fire immediately.
	r.OnBodyClose(func() { fired++ })
	if fired != 2 {
		t.Fatalf("late OnBodyClose fired=%d", fired)
	}
	if err := r.CloseBody(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestBufferCapTruncates(t *testing.T) {
	r, tb := streamingResp(strings.Repeat("x", 100))
	err := r.Buffer(10)
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("err = %v, want ErrBodyTooLarge", err)
	}
	if !tb.closed || !r.Truncated() || r.BodyComplete() || len(r.Body) != 0 {
		t.Fatalf("closed=%v trunc=%v complete=%v len=%d", tb.closed, r.Truncated(), r.BodyComplete(), len(r.Body))
	}
	if _, err := r.JSON(); err == nil {
		t.Fatal("JSON on truncated body must error")
	}
}

func TestJSONOnStreamingErrors(t *testing.T) {
	r, _ := streamingResp(`{"a":1}`)
	if _, err := r.JSON(); err == nil {
		t.Fatal("JSON on streaming response must error")
	}
}

func TestResponseDrainAndClose(t *testing.T) {
	r, tb := streamingResp("leftover bytes")
	var fired bool
	r.OnBodyClose(func() { fired = true })
	if err := r.DrainAndClose(); err != nil {
		t.Fatal(err)
	}
	if !tb.closed || !fired || r.Streaming() {
		t.Fatalf("closed=%v fired=%v streaming=%v", tb.closed, fired, r.Streaming())
	}
}

func TestDrainAndCloseReportsReadError(t *testing.T) {
	boom := errors.New("conn reset")
	tb := &trackingBody{Reader: strings.NewReader("x"), readErr: boom}
	if err := DrainAndClose(tb); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want read error surfaced", err)
	}
	if !tb.closed {
		t.Fatal("body not closed after drain error")
	}
	if err := DrainAndClose(nil); err != nil {
		t.Fatalf("nil body: %v", err)
	}
}

func TestStreamingWriteTo(t *testing.T) {
	r, tb := streamingResp("streamed body")
	r.Header = append(r.Header, Field{Key: "X-Test", Value: "1"})
	rec := httptest.NewRecorder()
	if err := r.WriteTo(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Body.String() != "streamed body" || rec.Header().Get("X-Test") != "1" {
		t.Fatalf("wrote %q", rec.Body.String())
	}
	if !tb.closed {
		t.Fatal("WriteTo must close the stream")
	}
}

func TestFromHTTPResponseStreaming(t *testing.T) {
	hr := &http.Response{
		StatusCode: 206,
		Header:     http.Header{"Content-Range": {"bytes 0-1/2"}},
		Body:       io.NopCloser(strings.NewReader("ab")),
	}
	r := FromHTTPResponseStreaming(hr)
	if !r.Streaming() || r.Status != 206 {
		t.Fatalf("streaming=%v status=%d", r.Streaming(), r.Status)
	}
	if v, _ := r.GetHeader("Content-Range"); v != "bytes 0-1/2" {
		t.Fatalf("header %q", v)
	}
	if err := r.Buffer(0); err != nil || string(r.Body) != "ab" {
		t.Fatalf("buffer: %v %q", err, r.Body)
	}
}

func TestFromHTTPLimited(t *testing.T) {
	mk := func(n int) *http.Request {
		req := httptest.NewRequest("POST", "http://app.example/submit",
			bytes.NewReader(bytes.Repeat([]byte("z"), n)))
		req.Header.Set("Content-Type", "application/octet-stream")
		return req
	}
	if _, err := FromHTTPLimited(mk(100), 64); !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("over-limit err = %v, want ErrBodyTooLarge", err)
	}
	r, err := FromHTTPLimited(mk(64), 64)
	if err != nil {
		t.Fatalf("at-limit: %v", err)
	}
	if len(r.BodyRaw) != 64 {
		t.Fatalf("body len %d", len(r.BodyRaw))
	}
	if _, err := FromHTTPLimited(mk(100), 0); err != nil {
		t.Fatalf("unlimited: %v", err)
	}
}

func TestRangeHeadersExcludedFromKey(t *testing.T) {
	full := &Request{Method: "GET", Host: "app.example", Path: "/media/1"}
	ranged := &Request{Method: "GET", Host: "app.example", Path: "/media/1",
		Header: []Field{{Key: "Range", Value: "bytes=0-99"}, {Key: "If-Range", Value: `"v1"`}}}
	if full.CanonicalKey() != ranged.CanonicalKey() {
		t.Fatal("ranged request must share the full request's canonical key")
	}
	other := &Request{Method: "GET", Host: "app.example", Path: "/media/1",
		Header: []Field{{Key: "Authorization", Value: "Bearer t"}}}
	if full.CanonicalKey() == other.CanonicalKey() {
		t.Fatal("real application headers must still differentiate keys")
	}
}
