// Package httpmsg models HTTP transactions (request-response pairs)
// independently of the wire representation.
//
// APPx reasons about requests at the granularity of named fields — URI, query
// string, header fields, and body fields (form-encoded or JSON) — because
// those are the positions where inter-transaction dependencies live (§4.1 of
// the paper) and the positions dynamic learning fills in at run time (§4.2).
// This package provides that field-level view plus lossless conversion to and
// from net/http, and the exact-match canonical key the proxy uses to decide
// whether a prefetched response may be served (§4.5: "the proxy sends the
// response only when the prefetch request is identical to the client's
// request").
package httpmsg

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"

	"appx/internal/jsonpath"
)

// Field is an ordered key-value pair (query parameter, header, or form body
// field).
type Field struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// BodyKind discriminates request body representations.
type BodyKind uint8

const (
	BodyNone BodyKind = iota
	BodyForm          // application/x-www-form-urlencoded fields
	BodyJSON          // application/json document
	BodyRaw           // opaque bytes
)

func (k BodyKind) String() string {
	switch k {
	case BodyNone:
		return "none"
	case BodyForm:
		return "form"
	case BodyJSON:
		return "json"
	case BodyRaw:
		return "raw"
	default:
		return fmt.Sprintf("bodykind(%d)", uint8(k))
	}
}

// Request is a field-structured HTTP request.
type Request struct {
	Method string
	Scheme string // "http" in this emulation; the paper's proxy sees decrypted HTTPS
	Host   string
	Path   string
	Query  []Field
	Header []Field

	BodyKind BodyKind
	BodyForm []Field
	BodyJSON any // encoding/json generic value shape
	BodyRaw  []byte

	// ckey memoizes CanonicalKey. The Set*/Delete* mutators clear it; code
	// that assigns the exported fields directly on a request that has
	// already been keyed must Clone first (Clone drops the cache).
	ckey string
}

// Clone deep-copies the request (without the canonical-key cache, so the
// clone may be freely mutated through direct field writes).
func (r *Request) Clone() *Request {
	c := *r
	c.ckey = ""
	c.Query = append([]Field(nil), r.Query...)
	c.Header = append([]Field(nil), r.Header...)
	c.BodyForm = append([]Field(nil), r.BodyForm...)
	c.BodyRaw = append([]byte(nil), r.BodyRaw...)
	if r.BodyJSON != nil {
		c.BodyJSON = cloneJSON(r.BodyJSON)
	}
	return &c
}

func cloneJSON(v any) any {
	switch x := v.(type) {
	case map[string]any:
		m := make(map[string]any, len(x))
		for k, vv := range x {
			m[k] = cloneJSON(vv)
		}
		return m
	case []any:
		s := make([]any, len(x))
		for i, vv := range x {
			s[i] = cloneJSON(vv)
		}
		return s
	default:
		return x
	}
}

// URL renders the request URL including the encoded query string.
func (r *Request) URL() string {
	scheme := r.Scheme
	if scheme == "" {
		scheme = "http"
	}
	u := scheme + "://" + r.Host + r.Path
	if len(r.Query) > 0 {
		vals := url.Values{}
		for _, f := range r.Query {
			vals.Add(f.Key, f.Value)
		}
		u += "?" + vals.Encode()
	}
	return u
}

// GetHeader returns the first header value for key (case-insensitive) and
// whether it was present.
func (r *Request) GetHeader(key string) (string, bool) {
	for _, f := range r.Header {
		if strings.EqualFold(f.Key, key) {
			return f.Value, true
		}
	}
	return "", false
}

// SetHeader replaces all values of key with one value, appending when absent.
func (r *Request) SetHeader(key, value string) {
	r.ckey = ""
	out := r.Header[:0]
	found := false
	for _, f := range r.Header {
		if strings.EqualFold(f.Key, key) {
			if !found {
				out = append(out, Field{Key: f.Key, Value: value})
				found = true
			}
			continue
		}
		out = append(out, f)
	}
	if !found {
		out = append(out, Field{Key: key, Value: value})
	}
	r.Header = out
}

// DeleteHeader removes every header named key (case-insensitive).
func (r *Request) DeleteHeader(key string) {
	r.ckey = ""
	out := r.Header[:0]
	for _, f := range r.Header {
		if !strings.EqualFold(f.Key, key) {
			out = append(out, f)
		}
	}
	r.Header = out
}

// GetQuery returns the first query value for key.
func (r *Request) GetQuery(key string) (string, bool) {
	for _, f := range r.Query {
		if f.Key == key {
			return f.Value, true
		}
	}
	return "", false
}

// SetQuery replaces the first query value for key, appending when absent.
func (r *Request) SetQuery(key, value string) {
	r.ckey = ""
	for i, f := range r.Query {
		if f.Key == key {
			r.Query[i].Value = value
			return
		}
	}
	r.Query = append(r.Query, Field{Key: key, Value: value})
}

// GetForm returns the first form body field value for key.
func (r *Request) GetForm(key string) (string, bool) {
	for _, f := range r.BodyForm {
		if f.Key == key {
			return f.Value, true
		}
	}
	return "", false
}

// SetForm replaces the first form field for key, appending when absent, and
// marks the body as form-encoded.
func (r *Request) SetForm(key, value string) {
	r.ckey = ""
	r.BodyKind = BodyForm
	for i, f := range r.BodyForm {
		if f.Key == key {
			r.BodyForm[i].Value = value
			return
		}
	}
	r.BodyForm = append(r.BodyForm, Field{Key: key, Value: value})
}

// DeleteForm removes all form fields named key.
func (r *Request) DeleteForm(key string) {
	r.ckey = ""
	out := r.BodyForm[:0]
	for _, f := range r.BodyForm {
		if f.Key != key {
			out = append(out, f)
		}
	}
	r.BodyForm = out
}

// hopByHop lists fields excluded from the canonical key: transport details
// that differ between a prefetched request and the client's live request
// without changing application semantics. Content-Type is covered by
// BodyKind, which the key already includes. Range and If-Range are excluded
// so a ranged request shares its key with the full-entity request — the
// proxy fetches and caches whole entities and slices the 206 locally, which
// preserves §4.5 exactness (a byte range of a byte-identical response).
var hopByHop = map[string]bool{
	"content-length":    true,
	"content-type":      true,
	"connection":        true,
	"accept-encoding":   true,
	"proxy-connection":  true,
	"keep-alive":        true,
	"transfer-encoding": true,
	"te":                true,
	"trailer":           true,
	"upgrade":           true,
	"range":             true,
	"if-range":          true,
}

// keyScratch pools CanonicalKey's working state: the canonical byte stream
// fed to the hash and the sort buffer for query/header/form fields. The
// proxy keys every request (twice per prefetched transaction: planning and
// lookup), so this scratch — not the digest — dominated allocations.
type keyScratch struct {
	buf    []byte
	fields []Field
}

var keyScratchPool = sync.Pool{New: func() any { return new(keyScratch) }}

// write appends one canonical component: the string, then a 0 separator.
func (ks *keyScratch) write(parts ...string) {
	for _, p := range parts {
		ks.buf = append(ks.buf, p...)
		ks.buf = append(ks.buf, 0)
	}
}

// sorted copies fields into the reusable scratch slice, ordered by key then
// value (stable: insertion sort preserves input order of exact duplicates,
// which hash identically anyway).
func (ks *keyScratch) sorted(fields []Field) []Field {
	out := ks.fields[:0]
	for _, f := range fields {
		out = append(out, f)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && fieldLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	ks.fields = out
	return out
}

func fieldLess(a, b Field) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Value < b.Value
}

// CanonicalKey returns a deterministic digest of the request covering method,
// host, path, query string, application headers, and body. Two requests with
// equal keys are "identical" in the sense of §4.5 — only then may the proxy
// serve a prefetched response. The result is memoized on the request; the
// Set*/Delete* mutators invalidate it. Memoized requests must not be keyed
// and mutated concurrently from different goroutines (Clone first).
func (r *Request) CanonicalKey() string {
	if r.ckey != "" {
		return r.ckey
	}
	ks := keyScratchPool.Get().(*keyScratch)
	ks.buf = ks.buf[:0]
	// ToUpper/ToLower return their argument unchanged (no allocation) in
	// the common already-normalized case.
	ks.write("m", strings.ToUpper(r.Method), "h", strings.ToLower(r.Host), "p", r.Path)

	for _, f := range ks.sorted(r.Query) {
		ks.write("q", f.Key, f.Value)
	}

	hdr := ks.fields[len(ks.fields):]
	for _, f := range r.Header {
		k := strings.ToLower(f.Key)
		if hopByHop[k] {
			continue
		}
		hdr = append(hdr, Field{Key: k, Value: f.Value})
	}
	for i := 1; i < len(hdr); i++ {
		for j := i; j > 0 && fieldLess(hdr[j], hdr[j-1]); j-- {
			hdr[j], hdr[j-1] = hdr[j-1], hdr[j]
		}
	}
	for _, f := range hdr {
		ks.write("H", f.Key, f.Value)
	}

	switch r.BodyKind {
	case BodyForm:
		for _, f := range ks.sorted(r.BodyForm) {
			ks.write("b", f.Key, f.Value)
		}
	case BodyJSON:
		ks.buf = append(ks.buf, 'j', 0)
		ks.buf = appendCanonicalJSON(ks.buf, r.BodyJSON)
		ks.buf = append(ks.buf, 0)
	case BodyRaw:
		ks.buf = append(ks.buf, 'r', 0)
		ks.buf = append(ks.buf, r.BodyRaw...)
		ks.buf = append(ks.buf, 0)
	}
	sum := sha256.Sum256(ks.buf)
	keyScratchPool.Put(ks)
	r.ckey = hex.EncodeToString(sum[:])
	return r.ckey
}

// canonicalJSON renders a generic JSON value with sorted object keys.
func canonicalJSON(v any) string {
	return string(appendCanonicalJSON(nil, v))
}

// appendCanonicalJSON appends the canonical rendering to buf and returns it,
// so CanonicalKey can stream JSON bodies into its pooled buffer without an
// intermediate builder allocation.
func appendCanonicalJSON(buf []byte, v any) []byte {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf = append(buf, '{')
		for i, k := range keys {
			if i > 0 {
				buf = append(buf, ',')
			}
			kb, _ := json.Marshal(k)
			buf = append(buf, kb...)
			buf = append(buf, ':')
			buf = appendCanonicalJSON(buf, x[k])
		}
		return append(buf, '}')
	case []any:
		buf = append(buf, '[')
		for i, e := range x {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendCanonicalJSON(buf, e)
		}
		return append(buf, ']')
	default:
		eb, _ := json.Marshal(x)
		return append(buf, eb...)
	}
}

// EncodeBody renders the body bytes and matching Content-Type.
func (r *Request) EncodeBody() (contentType string, body []byte) {
	switch r.BodyKind {
	case BodyForm:
		vals := url.Values{}
		for _, f := range r.BodyForm {
			vals.Add(f.Key, f.Value)
		}
		return "application/x-www-form-urlencoded", []byte(vals.Encode())
	case BodyJSON:
		b, _ := json.Marshal(r.BodyJSON)
		return "application/json", b
	case BodyRaw:
		return "application/octet-stream", r.BodyRaw
	default:
		return "", nil
	}
}

// ToHTTP converts to a *http.Request suitable for a client round trip.
func (r *Request) ToHTTP() (*http.Request, error) {
	ct, body := r.EncodeBody()
	req, err := http.NewRequest(strings.ToUpper(r.Method), r.URL(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for _, f := range r.Header {
		req.Header.Add(f.Key, f.Value)
	}
	if ct != "" && req.Header.Get("Content-Type") == "" {
		req.Header.Set("Content-Type", ct)
	}
	return req, nil
}

// FromHTTP converts an inbound *http.Request (as seen by a proxy or origin
// handler) into the field-structured form, consuming the body.
func FromHTTP(req *http.Request) (*Request, error) {
	return FromHTTPLimited(req, 0)
}

// FromHTTPLimited is FromHTTP with a body-size guard: when maxBody > 0 and
// the request body exceeds it, the body is closed and ErrBodyTooLarge is
// returned (the proxy answers 413). maxBody <= 0 means unlimited.
func FromHTTPLimited(req *http.Request, maxBody int64) (*Request, error) {
	out := &Request{
		Method: req.Method,
		Scheme: "http",
		Host:   req.Host,
		Path:   req.URL.Path,
	}
	if req.URL.Scheme != "" {
		out.Scheme = req.URL.Scheme
	}
	if out.Host == "" {
		out.Host = req.URL.Host
	}
	for _, key := range sortedQueryKeys(req.URL.Query()) {
		for _, v := range req.URL.Query()[key] {
			out.Query = append(out.Query, Field{Key: key, Value: v})
		}
	}
	for _, key := range sortedHeaderKeys(req.Header) {
		for _, v := range req.Header[key] {
			out.Header = append(out.Header, Field{Key: key, Value: v})
		}
	}
	var body []byte
	if req.Body != nil {
		var err error
		src := io.Reader(req.Body)
		if maxBody > 0 {
			src = io.LimitReader(req.Body, maxBody+1)
		}
		body, err = io.ReadAll(src)
		if err != nil {
			req.Body.Close()
			return nil, fmt.Errorf("httpmsg: reading body: %w", err)
		}
		req.Body.Close()
		if maxBody > 0 && int64(len(body)) > maxBody {
			return nil, ErrBodyTooLarge
		}
	}
	if len(body) == 0 {
		return out, nil
	}
	ct := req.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "application/x-www-form-urlencoded"):
		vals, err := url.ParseQuery(string(body))
		if err != nil {
			out.BodyKind = BodyRaw
			out.BodyRaw = body
			return out, nil
		}
		out.BodyKind = BodyForm
		for _, key := range sortedQueryKeys(vals) {
			for _, v := range vals[key] {
				out.BodyForm = append(out.BodyForm, Field{Key: key, Value: v})
			}
		}
	case strings.HasPrefix(ct, "application/json"):
		v, err := jsonpath.Decode(body)
		if err != nil {
			out.BodyKind = BodyRaw
			out.BodyRaw = body
			return out, nil
		}
		out.BodyKind = BodyJSON
		out.BodyJSON = v
	default:
		out.BodyKind = BodyRaw
		out.BodyRaw = body
	}
	return out, nil
}

func sortedQueryKeys(v url.Values) []string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedHeaderKeys(h http.Header) []string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Response is a captured HTTP response. A Response is either buffered (Body
// holds the complete entity, stream nil — the form cache entries, learning,
// and persistence operate on) or streaming (stream carries the body as it
// arrives from the origin; Body is empty until/unless Buffer consumes the
// stream). See body.go for the streaming accessors.
type Response struct {
	Status int
	Header []Field
	Body   []byte

	stream *bodyStream
	trunc  bool // body exceeded a Buffer cap and was discarded mid-read

	jsonOnce bool
	jsonVal  any
	jsonErr  error
}

// Clone deep-copies the response (without the parsed-JSON cache). Clone is
// defined for buffered responses only: a stream has exactly one consumer, so
// the clone shares no stream (its body is whatever has been buffered).
func (r *Response) Clone() *Response {
	return &Response{
		Status: r.Status,
		Header: append([]Field(nil), r.Header...),
		Body:   append([]byte(nil), r.Body...),
	}
}

// GetHeader returns the first header value for key (case-insensitive).
func (r *Response) GetHeader(key string) (string, bool) {
	for _, f := range r.Header {
		if strings.EqualFold(f.Key, key) {
			return f.Value, true
		}
	}
	return "", false
}

// DeleteHeader removes every response header named key (case-insensitive).
func (r *Response) DeleteHeader(key string) {
	out := r.Header[:0]
	for _, f := range r.Header {
		if !strings.EqualFold(f.Key, key) {
			out = append(out, f)
		}
	}
	r.Header = out
}

// JSON lazily parses the body as JSON, caching the result. It refuses
// streaming or truncated responses: callers that need the document must
// Buffer the body first, and a capped capture is never parsed as if whole.
func (r *Response) JSON() (any, error) {
	if !r.jsonOnce {
		r.jsonOnce = true
		switch {
		case r.Streaming():
			r.jsonErr = errStreamingJSON
		case r.trunc:
			r.jsonErr = errTruncatedJSON
		default:
			r.jsonVal, r.jsonErr = jsonpath.Decode(r.Body)
		}
	}
	return r.jsonVal, r.jsonErr
}

// FromHTTPResponse captures a *http.Response, consuming its body.
func FromHTTPResponse(resp *http.Response) (*Response, error) {
	out := &Response{Status: resp.StatusCode}
	for _, key := range sortedHeaderKeys(resp.Header) {
		for _, v := range resp.Header[key] {
			out.Header = append(out.Header, Field{Key: key, Value: v})
		}
	}
	if resp.Body != nil {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("httpmsg: reading response body: %w", err)
		}
		resp.Body.Close()
		out.Body = b
	}
	return out, nil
}

// WriteTo writes the response through a http.ResponseWriter. A streaming
// response is copied chunk-by-chunk through a pooled buffer — bytes reach
// the client as they arrive from the origin — and the body is closed
// afterwards regardless of error.
func (r *Response) WriteTo(w http.ResponseWriter) error {
	for _, f := range r.Header {
		w.Header().Add(f.Key, f.Value)
	}
	w.WriteHeader(r.Status)
	if r.Streaming() {
		// Flush per write so streamed bytes leave as they arrive instead of
		// pooling in net/http's response buffer — time-to-first-byte must
		// track the origin's first byte, not its last.
		dst := io.Writer(w)
		if f, ok := w.(http.Flusher); ok {
			dst = flushedWriter{w: w, f: f}
		}
		_, err := copyPooled(dst, r.stream.rc)
		if cerr := r.CloseBody(); err == nil {
			err = cerr
		}
		return err
	}
	_, err := w.Write(r.Body)
	return err
}

// Transaction pairs a request with its response — the unit the paper calls a
// "network transaction".
type Transaction struct {
	Request  *Request
	Response *Response
}

// ServeViaHandler performs a transaction against an in-process http.Handler,
// bypassing the network. Tools (the verification phase, the analyzers) use
// it to exercise origin logic without sockets.
func ServeViaHandler(h http.Handler, r *Request) (*Response, error) {
	hreq, err := r.ToHTTP()
	if err != nil {
		return nil, err
	}
	hreq.Host = r.Host
	hreq.RemoteAddr = "127.0.0.1:0"
	rec := &memoryRecorder{status: http.StatusOK, header: http.Header{}}
	h.ServeHTTP(rec, hreq)
	out := &Response{Status: rec.status}
	for _, key := range sortedHeaderKeys(rec.header) {
		for _, v := range rec.header[key] {
			out.Header = append(out.Header, Field{Key: key, Value: v})
		}
	}
	out.Body = rec.body.Bytes()
	return out, nil
}

// memoryRecorder is a minimal in-memory http.ResponseWriter.
type memoryRecorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func (m *memoryRecorder) Header() http.Header { return m.header }

func (m *memoryRecorder) WriteHeader(status int) { m.status = status }

func (m *memoryRecorder) Write(p []byte) (int, error) { return m.body.Write(p) }
