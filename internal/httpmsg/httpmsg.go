// Package httpmsg models HTTP transactions (request-response pairs)
// independently of the wire representation.
//
// APPx reasons about requests at the granularity of named fields — URI, query
// string, header fields, and body fields (form-encoded or JSON) — because
// those are the positions where inter-transaction dependencies live (§4.1 of
// the paper) and the positions dynamic learning fills in at run time (§4.2).
// This package provides that field-level view plus lossless conversion to and
// from net/http, and the exact-match canonical key the proxy uses to decide
// whether a prefetched response may be served (§4.5: "the proxy sends the
// response only when the prefetch request is identical to the client's
// request").
package httpmsg

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"

	"appx/internal/jsonpath"
)

// Field is an ordered key-value pair (query parameter, header, or form body
// field).
type Field struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// BodyKind discriminates request body representations.
type BodyKind uint8

const (
	BodyNone BodyKind = iota
	BodyForm          // application/x-www-form-urlencoded fields
	BodyJSON          // application/json document
	BodyRaw           // opaque bytes
)

func (k BodyKind) String() string {
	switch k {
	case BodyNone:
		return "none"
	case BodyForm:
		return "form"
	case BodyJSON:
		return "json"
	case BodyRaw:
		return "raw"
	default:
		return fmt.Sprintf("bodykind(%d)", uint8(k))
	}
}

// Request is a field-structured HTTP request.
type Request struct {
	Method string
	Scheme string // "http" in this emulation; the paper's proxy sees decrypted HTTPS
	Host   string
	Path   string
	Query  []Field
	Header []Field

	BodyKind BodyKind
	BodyForm []Field
	BodyJSON any // encoding/json generic value shape
	BodyRaw  []byte
}

// Clone deep-copies the request.
func (r *Request) Clone() *Request {
	c := *r
	c.Query = append([]Field(nil), r.Query...)
	c.Header = append([]Field(nil), r.Header...)
	c.BodyForm = append([]Field(nil), r.BodyForm...)
	c.BodyRaw = append([]byte(nil), r.BodyRaw...)
	if r.BodyJSON != nil {
		c.BodyJSON = cloneJSON(r.BodyJSON)
	}
	return &c
}

func cloneJSON(v any) any {
	switch x := v.(type) {
	case map[string]any:
		m := make(map[string]any, len(x))
		for k, vv := range x {
			m[k] = cloneJSON(vv)
		}
		return m
	case []any:
		s := make([]any, len(x))
		for i, vv := range x {
			s[i] = cloneJSON(vv)
		}
		return s
	default:
		return x
	}
}

// URL renders the request URL including the encoded query string.
func (r *Request) URL() string {
	scheme := r.Scheme
	if scheme == "" {
		scheme = "http"
	}
	u := scheme + "://" + r.Host + r.Path
	if len(r.Query) > 0 {
		vals := url.Values{}
		for _, f := range r.Query {
			vals.Add(f.Key, f.Value)
		}
		u += "?" + vals.Encode()
	}
	return u
}

// GetHeader returns the first header value for key (case-insensitive) and
// whether it was present.
func (r *Request) GetHeader(key string) (string, bool) {
	for _, f := range r.Header {
		if strings.EqualFold(f.Key, key) {
			return f.Value, true
		}
	}
	return "", false
}

// SetHeader replaces all values of key with one value, appending when absent.
func (r *Request) SetHeader(key, value string) {
	out := r.Header[:0]
	found := false
	for _, f := range r.Header {
		if strings.EqualFold(f.Key, key) {
			if !found {
				out = append(out, Field{Key: f.Key, Value: value})
				found = true
			}
			continue
		}
		out = append(out, f)
	}
	if !found {
		out = append(out, Field{Key: key, Value: value})
	}
	r.Header = out
}

// DeleteHeader removes every header named key (case-insensitive).
func (r *Request) DeleteHeader(key string) {
	out := r.Header[:0]
	for _, f := range r.Header {
		if !strings.EqualFold(f.Key, key) {
			out = append(out, f)
		}
	}
	r.Header = out
}

// GetQuery returns the first query value for key.
func (r *Request) GetQuery(key string) (string, bool) {
	for _, f := range r.Query {
		if f.Key == key {
			return f.Value, true
		}
	}
	return "", false
}

// SetQuery replaces the first query value for key, appending when absent.
func (r *Request) SetQuery(key, value string) {
	for i, f := range r.Query {
		if f.Key == key {
			r.Query[i].Value = value
			return
		}
	}
	r.Query = append(r.Query, Field{Key: key, Value: value})
}

// GetForm returns the first form body field value for key.
func (r *Request) GetForm(key string) (string, bool) {
	for _, f := range r.BodyForm {
		if f.Key == key {
			return f.Value, true
		}
	}
	return "", false
}

// SetForm replaces the first form field for key, appending when absent, and
// marks the body as form-encoded.
func (r *Request) SetForm(key, value string) {
	r.BodyKind = BodyForm
	for i, f := range r.BodyForm {
		if f.Key == key {
			r.BodyForm[i].Value = value
			return
		}
	}
	r.BodyForm = append(r.BodyForm, Field{Key: key, Value: value})
}

// DeleteForm removes all form fields named key.
func (r *Request) DeleteForm(key string) {
	out := r.BodyForm[:0]
	for _, f := range r.BodyForm {
		if f.Key != key {
			out = append(out, f)
		}
	}
	r.BodyForm = out
}

// hopByHop lists fields excluded from the canonical key: transport details
// that differ between a prefetched request and the client's live request
// without changing application semantics. Content-Type is covered by
// BodyKind, which the key already includes.
var hopByHop = map[string]bool{
	"content-length":    true,
	"content-type":      true,
	"connection":        true,
	"accept-encoding":   true,
	"proxy-connection":  true,
	"keep-alive":        true,
	"transfer-encoding": true,
	"te":                true,
	"trailer":           true,
	"upgrade":           true,
}

// CanonicalKey returns a deterministic digest of the request covering method,
// host, path, query string, application headers, and body. Two requests with
// equal keys are "identical" in the sense of §4.5 — only then may the proxy
// serve a prefetched response.
func (r *Request) CanonicalKey() string {
	h := sha256.New()
	w := func(parts ...string) {
		for _, p := range parts {
			io.WriteString(h, p)
			h.Write([]byte{0})
		}
	}
	w("m", strings.ToUpper(r.Method), "h", strings.ToLower(r.Host), "p", r.Path)

	q := append([]Field(nil), r.Query...)
	sort.SliceStable(q, func(i, j int) bool {
		if q[i].Key != q[j].Key {
			return q[i].Key < q[j].Key
		}
		return q[i].Value < q[j].Value
	})
	for _, f := range q {
		w("q", f.Key, f.Value)
	}

	var hdr []Field
	for _, f := range r.Header {
		k := strings.ToLower(f.Key)
		if hopByHop[k] {
			continue
		}
		hdr = append(hdr, Field{Key: k, Value: f.Value})
	}
	sort.SliceStable(hdr, func(i, j int) bool {
		if hdr[i].Key != hdr[j].Key {
			return hdr[i].Key < hdr[j].Key
		}
		return hdr[i].Value < hdr[j].Value
	})
	for _, f := range hdr {
		w("H", f.Key, f.Value)
	}

	switch r.BodyKind {
	case BodyForm:
		bf := append([]Field(nil), r.BodyForm...)
		sort.SliceStable(bf, func(i, j int) bool {
			if bf[i].Key != bf[j].Key {
				return bf[i].Key < bf[j].Key
			}
			return bf[i].Value < bf[j].Value
		})
		for _, f := range bf {
			w("b", f.Key, f.Value)
		}
	case BodyJSON:
		w("j", canonicalJSON(r.BodyJSON))
	case BodyRaw:
		w("r", string(r.BodyRaw))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalJSON renders a generic JSON value with sorted object keys.
func canonicalJSON(v any) string {
	var b strings.Builder
	writeCanonicalJSON(&b, v)
	return b.String()
}

func writeCanonicalJSON(b *strings.Builder, v any) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			kb, _ := json.Marshal(k)
			b.Write(kb)
			b.WriteByte(':')
			writeCanonicalJSON(b, x[k])
		}
		b.WriteByte('}')
	case []any:
		b.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			writeCanonicalJSON(b, e)
		}
		b.WriteByte(']')
	default:
		eb, _ := json.Marshal(x)
		b.Write(eb)
	}
}

// EncodeBody renders the body bytes and matching Content-Type.
func (r *Request) EncodeBody() (contentType string, body []byte) {
	switch r.BodyKind {
	case BodyForm:
		vals := url.Values{}
		for _, f := range r.BodyForm {
			vals.Add(f.Key, f.Value)
		}
		return "application/x-www-form-urlencoded", []byte(vals.Encode())
	case BodyJSON:
		b, _ := json.Marshal(r.BodyJSON)
		return "application/json", b
	case BodyRaw:
		return "application/octet-stream", r.BodyRaw
	default:
		return "", nil
	}
}

// ToHTTP converts to a *http.Request suitable for a client round trip.
func (r *Request) ToHTTP() (*http.Request, error) {
	ct, body := r.EncodeBody()
	req, err := http.NewRequest(strings.ToUpper(r.Method), r.URL(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for _, f := range r.Header {
		req.Header.Add(f.Key, f.Value)
	}
	if ct != "" && req.Header.Get("Content-Type") == "" {
		req.Header.Set("Content-Type", ct)
	}
	return req, nil
}

// FromHTTP converts an inbound *http.Request (as seen by a proxy or origin
// handler) into the field-structured form, consuming the body.
func FromHTTP(req *http.Request) (*Request, error) {
	out := &Request{
		Method: req.Method,
		Scheme: "http",
		Host:   req.Host,
		Path:   req.URL.Path,
	}
	if req.URL.Scheme != "" {
		out.Scheme = req.URL.Scheme
	}
	if out.Host == "" {
		out.Host = req.URL.Host
	}
	for _, key := range sortedQueryKeys(req.URL.Query()) {
		for _, v := range req.URL.Query()[key] {
			out.Query = append(out.Query, Field{Key: key, Value: v})
		}
	}
	for _, key := range sortedHeaderKeys(req.Header) {
		for _, v := range req.Header[key] {
			out.Header = append(out.Header, Field{Key: key, Value: v})
		}
	}
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		if err != nil {
			return nil, fmt.Errorf("httpmsg: reading body: %w", err)
		}
		req.Body.Close()
	}
	if len(body) == 0 {
		return out, nil
	}
	ct := req.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "application/x-www-form-urlencoded"):
		vals, err := url.ParseQuery(string(body))
		if err != nil {
			out.BodyKind = BodyRaw
			out.BodyRaw = body
			return out, nil
		}
		out.BodyKind = BodyForm
		for _, key := range sortedQueryKeys(vals) {
			for _, v := range vals[key] {
				out.BodyForm = append(out.BodyForm, Field{Key: key, Value: v})
			}
		}
	case strings.HasPrefix(ct, "application/json"):
		v, err := jsonpath.Decode(body)
		if err != nil {
			out.BodyKind = BodyRaw
			out.BodyRaw = body
			return out, nil
		}
		out.BodyKind = BodyJSON
		out.BodyJSON = v
	default:
		out.BodyKind = BodyRaw
		out.BodyRaw = body
	}
	return out, nil
}

func sortedQueryKeys(v url.Values) []string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedHeaderKeys(h http.Header) []string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Response is a captured HTTP response.
type Response struct {
	Status int
	Header []Field
	Body   []byte

	jsonOnce bool
	jsonVal  any
	jsonErr  error
}

// Clone deep-copies the response (without the parsed-JSON cache).
func (r *Response) Clone() *Response {
	return &Response{
		Status: r.Status,
		Header: append([]Field(nil), r.Header...),
		Body:   append([]byte(nil), r.Body...),
	}
}

// GetHeader returns the first header value for key (case-insensitive).
func (r *Response) GetHeader(key string) (string, bool) {
	for _, f := range r.Header {
		if strings.EqualFold(f.Key, key) {
			return f.Value, true
		}
	}
	return "", false
}

// JSON lazily parses the body as JSON, caching the result.
func (r *Response) JSON() (any, error) {
	if !r.jsonOnce {
		r.jsonOnce = true
		r.jsonVal, r.jsonErr = jsonpath.Decode(r.Body)
	}
	return r.jsonVal, r.jsonErr
}

// FromHTTPResponse captures a *http.Response, consuming its body.
func FromHTTPResponse(resp *http.Response) (*Response, error) {
	out := &Response{Status: resp.StatusCode}
	for _, key := range sortedHeaderKeys(resp.Header) {
		for _, v := range resp.Header[key] {
			out.Header = append(out.Header, Field{Key: key, Value: v})
		}
	}
	if resp.Body != nil {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("httpmsg: reading response body: %w", err)
		}
		resp.Body.Close()
		out.Body = b
	}
	return out, nil
}

// WriteTo writes the response through a http.ResponseWriter.
func (r *Response) WriteTo(w http.ResponseWriter) error {
	for _, f := range r.Header {
		w.Header().Add(f.Key, f.Value)
	}
	w.WriteHeader(r.Status)
	_, err := w.Write(r.Body)
	return err
}

// Transaction pairs a request with its response — the unit the paper calls a
// "network transaction".
type Transaction struct {
	Request  *Request
	Response *Response
}

// ServeViaHandler performs a transaction against an in-process http.Handler,
// bypassing the network. Tools (the verification phase, the analyzers) use
// it to exercise origin logic without sockets.
func ServeViaHandler(h http.Handler, r *Request) (*Response, error) {
	hreq, err := r.ToHTTP()
	if err != nil {
		return nil, err
	}
	hreq.Host = r.Host
	hreq.RemoteAddr = "127.0.0.1:0"
	rec := &memoryRecorder{status: http.StatusOK, header: http.Header{}}
	h.ServeHTTP(rec, hreq)
	out := &Response{Status: rec.status}
	for _, key := range sortedHeaderKeys(rec.header) {
		for _, v := range rec.header[key] {
			out.Header = append(out.Header, Field{Key: key, Value: v})
		}
	}
	out.Body = rec.body.Bytes()
	return out, nil
}

// memoryRecorder is a minimal in-memory http.ResponseWriter.
type memoryRecorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func (m *memoryRecorder) Header() http.Header { return m.header }

func (m *memoryRecorder) WriteHeader(status int) { m.status = status }

func (m *memoryRecorder) Write(p []byte) (int, error) { return m.body.Write(p) }
