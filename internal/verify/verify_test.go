package verify

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"appx/internal/air"
	"appx/internal/apk"
	"appx/internal/apps"
	"appx/internal/sig"
	"appx/internal/static"
)

func noSleep(time.Duration) {}

func analyze(t testing.TB, a *apps.App) *sig.Graph {
	t.Helper()
	g, err := static.Analyze(a.APK.Program, a.Name, a.APK.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return g
}

func TestVerifyWishAllSignaturesPass(t *testing.T) {
	a := apps.Wish()
	g := analyze(t, a)
	rep, err := Run(Options{
		APK: a.APK, Graph: g, Origin: a.Handler(0),
		FuzzSeed: 5, FuzzEvents: 200,
		ProbeMin: time.Millisecond, ProbeMax: 4 * time.Millisecond, Sleep: noSleep,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Verified) == 0 {
		t.Fatalf("nothing verified; disabled: %+v", rep.Disabled)
	}
	// Every verified signature's policy must remain enabled, every disabled
	// one's disabled.
	for _, id := range rep.Verified {
		pol := rep.Config.Policy(g.Sig(id).Hash())
		if pol == nil || !pol.Prefetch {
			t.Fatalf("verified %s has disabled policy", id)
		}
		if _, ok := rep.Expirations[id]; !ok {
			t.Fatalf("verified %s missing expiration estimate", id)
		}
	}
	for _, d := range rep.Disabled {
		pol := rep.Config.Policy(d.Hash)
		if pol == nil || pol.Prefetch {
			t.Fatalf("disabled %s still enabled", d.SigID)
		}
	}
	if rep.FuzzEvents < 200 {
		t.Fatalf("fuzz events = %d", rep.FuzzEvents)
	}
}

// buildRejectingApp issues a request whose reconstruction the origin refuses:
// the token is single-use, so the proxy's replayed copy gets a 403.
func buildRejectingApp(t testing.TB) (*apk.APK, http.Handler) {
	t.Helper()
	pb := air.NewProgramBuilder()
	c := pb.Class("Main", air.KindActivity)
	m := c.Method("launch", 0)
	req := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, req, m.ConstStr("http://one.example/token"))
	resp := m.CallAPI(air.APIHTTPExecute, req)
	body := m.CallAPI(air.APIHTTPRespBody, resp)
	tok := m.CallAPI(air.APIJSONGet, body, m.ConstStr("token"))
	use := m.CallAPI(air.APIHTTPNewRequest, m.ConstStr("GET"))
	m.CallAPI(air.APIHTTPSetURL, use, m.ConstStr("http://one.example/use"))
	m.CallAPI(air.APIHTTPAddQuery, use, m.ConstStr("t"), tok)
	m.CallAPI(air.APIHTTPExecute, use)
	m.CallAPI(air.APIUIRender, m.ConstStr("home"))
	m.Done()

	a := &apk.APK{
		Manifest: apk.Manifest{
			Package: "com.oneshot", Label: "OneShot", Version: "1",
			LaunchHandler: "Main.launch", LaunchScreen: "home",
		},
		Screens: []apk.Screen{{Name: "home", Widgets: []apk.Widget{
			{ID: "again", Kind: apk.Button, Handler: "Main.launch"},
		}}},
		Program: pb.MustBuild(),
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}

	used := map[string]bool{}
	n := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/token", func(w http.ResponseWriter, r *http.Request) {
		n++
		tok := fmt.Sprintf("tok-%d", n)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"token":%q}`, tok)
	})
	mux.HandleFunc("/use", func(w http.ResponseWriter, r *http.Request) {
		tok := r.URL.Query().Get("t")
		if used[tok] {
			http.Error(w, "token reuse", http.StatusForbidden)
			return
		}
		used[tok] = true
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	})
	return a, mux
}

func TestVerifyDisablesRejectedSignature(t *testing.T) {
	a, origin := buildRejectingApp(t)
	g, err := static.Analyze(a.Program, "oneshot", a.Entries(), static.Options{Features: static.AllFeatures()})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Prefetchable()) == 0 {
		t.Fatal("token dependency not found")
	}
	rep, err := Run(Options{
		APK: a, Graph: g, Origin: origin,
		FuzzSeed: 1, FuzzEvents: 30,
		ProbeMin: time.Millisecond, ProbeMax: 2 * time.Millisecond, Sleep: noSleep,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Disabled) == 0 {
		t.Fatalf("single-use token signature not disabled; verified=%v", rep.Verified)
	}
	found := false
	for _, d := range rep.Disabled {
		if d.Reason == ReasonRejected {
			found = true
			if pol := rep.Config.Policy(d.Hash); pol == nil || pol.Prefetch {
				t.Fatal("rejected signature still enabled in config")
			}
		}
	}
	if !found {
		t.Fatalf("no rejection reason recorded: %+v", rep.Disabled)
	}
}

func TestEstimateExpirationStaticContent(t *testing.T) {
	fetch := func() ([]byte, error) { return []byte("same"), nil }
	got := EstimateExpiration(fetch, 10*time.Millisecond, 160*time.Millisecond, noSleep)
	if got != 160*time.Millisecond {
		t.Fatalf("static content estimate = %v, want max", got)
	}
}

func TestEstimateExpirationChangingContent(t *testing.T) {
	// Content changes after ~35ms of (virtual) elapsed time.
	var virtual time.Duration
	sleep := func(d time.Duration) { virtual += d }
	fetch := func() ([]byte, error) {
		if virtual >= 35*time.Millisecond {
			return []byte("new"), nil
		}
		return []byte("old"), nil
	}
	got := EstimateExpiration(fetch, 10*time.Millisecond, 640*time.Millisecond, sleep)
	// Periods: 10 (vt=10, old), 20 (vt=30, old), 40 (vt=70, new) → 40ms.
	if got != 40*time.Millisecond {
		t.Fatalf("changing content estimate = %v, want 40ms", got)
	}
}

func TestEstimateExpirationFetchError(t *testing.T) {
	calls := 0
	fetch := func() ([]byte, error) {
		calls++
		if calls > 1 {
			return nil, fmt.Errorf("down")
		}
		return []byte("x"), nil
	}
	got := EstimateExpiration(fetch, 10*time.Millisecond, 80*time.Millisecond, noSleep)
	if got != 10*time.Millisecond {
		t.Fatalf("error estimate = %v, want min", got)
	}
}

func TestRunValidatesOptions(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
}
