// Package verify implements APPx's Phase 2, testing and verification (§4.3
// of the paper): before deployment, the framework drives the app with a
// UI fuzzer through the freshly generated proxy against live origins. A
// prefetchable signature survives only if the proxy actually managed to
// reconstruct and prefetch it successfully; signatures whose reconstructions
// error out, are rejected by the origin, or never resolve their run-time
// values are removed from the prefetching set. The phase also estimates a
// per-signature expiration time by re-fetching each verified request with a
// doubling period until the response changes, and emits the initial proxy
// configuration.
package verify

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sort"
	"time"

	"appx/internal/apk"
	"appx/internal/config"
	"appx/internal/device"
	"appx/internal/fuzz"
	"appx/internal/httpmsg"
	"appx/internal/interp"
	"appx/internal/proxy"
	"appx/internal/sig"
)

// Options configures a verification run.
type Options struct {
	// APK is the application package under test.
	APK *apk.APK
	// Graph is the Phase-1 analysis output.
	Graph *sig.Graph
	// Origin serves the app's live API in process.
	Origin http.Handler

	// FuzzSeed/FuzzEvents configure the UI event stream (defaults 1 / 150).
	FuzzSeed   int64
	FuzzEvents int

	// Expiration probing: the period starts at ProbeMin and doubles until
	// the refetched response differs or ProbeMax is reached (defaults
	// 100 ms / 1 s — scale these with the emulation).
	ProbeMin time.Duration
	ProbeMax time.Duration
	// Sleep is injectable for tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

// Reason explains why a signature was disabled.
type Reason string

const (
	// ReasonError marks transport failures during prefetching.
	ReasonError Reason = "prefetch transport error"
	// ReasonRejected marks non-200 origin answers to reconstructed requests.
	ReasonRejected Reason = "origin rejected reconstructed request"
	// ReasonUnresolved marks signatures whose instances never became ready
	// (run-time values missing) or that fuzzing never exercised.
	ReasonUnresolved Reason = "never successfully prefetched"
)

// Disabled is one filtered-out signature.
type Disabled struct {
	SigID  string `json:"sig"`
	Hash   string `json:"hash"`
	Reason Reason `json:"reason"`
}

// Report is the verification outcome.
type Report struct {
	App string `json:"app"`
	// Verified lists signature IDs cleared for prefetching.
	Verified []string `json:"verified"`
	// Disabled lists filtered signatures with reasons.
	Disabled []Disabled `json:"disabled"`
	// Expirations holds the estimated per-signature expiry.
	Expirations map[string]time.Duration `json:"expirations"`
	// Config is the resulting initial configuration (Phase 3 input).
	Config *config.Config `json:"config"`
	// FuzzEvents / FuzzErrors summarize the driving session.
	FuzzEvents int `json:"fuzzEvents"`
	FuzzErrors int `json:"fuzzErrors"`
}

// Run executes the verification phase.
func Run(o Options) (*Report, error) {
	if o.APK == nil || o.Graph == nil || o.Origin == nil {
		return nil, fmt.Errorf("verify: APK, Graph and Origin are required")
	}
	if o.FuzzEvents == 0 {
		o.FuzzEvents = 150
	}
	if o.ProbeMin == 0 {
		o.ProbeMin = 100 * time.Millisecond
	}
	if o.ProbeMax == 0 {
		o.ProbeMax = time.Second
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}

	cfg := config.Default(o.Graph)
	up := proxy.UpstreamFunc(func(ctx context.Context, r *httpmsg.Request) (*httpmsg.Response, error) {
		return httpmsg.ServeViaHandler(o.Origin, r)
	})
	px := proxy.New(proxy.Options{Graph: o.Graph, Config: cfg, Upstream: up})
	defer px.Close()

	// Drive the app through the proxy with random UI events, as a client
	// would.
	dev, err := device.New(device.Config{
		APK:   o.APK,
		Scale: 1,
		Transport: interp.TransportFunc(func(r *httpmsg.Request) (*httpmsg.Response, error) {
			return httpmsg.ServeViaHandler(px, r)
		}),
		Props: interp.DeviceProps{UserAgent: "AppxVerify/1.0", Locale: "en-US", AppVersion: o.APK.Manifest.Version},
	})
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	fres, err := fuzz.Run(dev, o.APK, fuzz.Options{Seed: o.FuzzSeed, Events: o.FuzzEvents})
	if err != nil {
		return nil, fmt.Errorf("verify: fuzzing: %w", err)
	}
	px.Drain()

	snap := px.Stats().Snapshot()
	rep := &Report{
		App:         o.Graph.App,
		Expirations: map[string]time.Duration{},
		Config:      cfg,
		FuzzEvents:  fres.Events,
		FuzzErrors:  fres.Errors,
	}

	prefetchable := o.Graph.Prefetchable()
	sort.Strings(prefetchable)
	for _, id := range prefetchable {
		s := o.Graph.Sig(id)
		st := snap.PerSig[id]
		var reason Reason
		switch {
		case st.PrefetchErrors > 0:
			reason = ReasonError
		case st.PrefetchRejects > 0:
			reason = ReasonRejected
		case st.Prefetches == 0:
			reason = ReasonUnresolved
		}
		pol := cfg.Policy(s.Hash())
		if pol == nil {
			pol = &config.Policy{Hash: s.Hash(), URI: s.URI.String(), Probability: 1}
			cfg.SetPolicy(pol)
		}
		if reason != "" {
			pol.Prefetch = false
			rep.Disabled = append(rep.Disabled, Disabled{SigID: id, Hash: s.Hash(), Reason: reason})
			continue
		}
		rep.Verified = append(rep.Verified, id)
		// Estimate expiry from a concrete verified request.
		if sample := px.SampleRequest(id); sample != nil {
			exp := EstimateExpiration(func() ([]byte, error) {
				resp, err := up.RoundTrip(context.Background(), sample)
				if err != nil {
					return nil, err
				}
				// Streaming upstreams hand the body over unread; the probe
				// compares whole bodies, so consume it here.
				if err := resp.Buffer(0); err != nil {
					return nil, err
				}
				return resp.Body, nil
			}, o.ProbeMin, o.ProbeMax, o.Sleep)
			rep.Expirations[id] = exp
			pol.ExpirationTime = config.Duration(exp)
		}
	}
	return rep, nil
}

// EstimateExpiration probes how long a response stays identical: it
// refetches with a doubling period, returning the first period at which the
// content differed, or max when the content never changed (§4.3: "The
// prefetch period is getting increased until the new one is different with
// the old one").
func EstimateExpiration(fetch func() ([]byte, error), min, max time.Duration, sleep func(time.Duration)) time.Duration {
	old, err := fetch()
	if err != nil {
		return min
	}
	for period := min; period < max; period *= 2 {
		sleep(period)
		cur, err := fetch()
		if err != nil {
			return period
		}
		if !bytes.Equal(old, cur) {
			return period
		}
		old = cur
	}
	return max
}
