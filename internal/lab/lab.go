// Package lab wires a complete evaluation environment together: an app's
// origin servers on real TCP listeners, the APPx static analysis, the
// acceleration proxy serving on its own listener, WAN emulation on both hops
// (client↔proxy and proxy↔origin), and emulated devices as clients.
//
// Every emulated delay is multiplied by a Scale factor so the full §6
// evaluation fits a CI budget: the system is linear in time (all waits are
// propagation, serialization, server compute, or render sleeps), so scaled
// runs preserve ratios and, after dividing by Scale, approximate the
// paper-real absolute numbers.
package lab

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"appx/internal/apps"
	"appx/internal/config"
	"appx/internal/device"
	"appx/internal/interp"
	"appx/internal/netem"
	"appx/internal/proxy"
	"appx/internal/sig"
	"appx/internal/static"
)

// Options configures a Lab.
type Options struct {
	// App is the application under test.
	App *apps.App
	// Scale compresses all emulated time (default 1 = paper-real).
	Scale float64
	// Prefetch enables the acceleration path; false reproduces the "Orig"
	// baseline (proxy as a pure forwarder).
	Prefetch bool
	// ProxyOriginRTT, when set, overrides every host's Table-2 RTT — the
	// Figure 15/16 sweep knob (50/100/150 ms).
	ProxyOriginRTT time.Duration
	// ClientLink shapes the device↔proxy hop before scaling; defaults to
	// the paper's 4G profile (55 ms / 25 Mbps).
	ClientLink netem.Link
	// OriginBandwidth shapes the proxy↔origin hop (default 25 Mbps, §6.2).
	OriginBandwidth int64
	// Features selects the static-analysis extensions (default: all).
	Features *static.Features
	// Configure mutates the derived proxy configuration before start.
	Configure func(*config.Config)
	// Workers sizes the proxy prefetch pool.
	Workers int
	// DisableChaining ablates recursive (chain) prefetching.
	DisableChaining bool
	// RefreshExpired enables the refresh-on-expire extension.
	RefreshExpired bool
	// SharedTier enables the cross-user shared cache tier. Off by default:
	// the §6 replications measure per-user data usage, and sharing (an
	// extension beyond the paper's per-user prototype) would let one user's
	// prefetch serve another, changing what Figure 16's metric means.
	SharedTier bool
	// PrefetchPolicy selects the prefetch decision policy ("static" default,
	// "markov" enables the per-user transition model).
	PrefetchPolicy string
	// PolicyDecay overrides the markov history half-life (0 = default).
	PolicyDecay time.Duration
	// PolicyMaxUsers bounds the markov model's per-user footprint (0 = default).
	PolicyMaxUsers int
}

// Lab is a running evaluation environment.
type Lab struct {
	App    *apps.App
	Graph  *sig.Graph
	Config *config.Config
	Proxy  *proxy.Proxy
	Scale  float64

	clientLink netem.Link
	proxyAddr  string
	originSrv  *http.Server
	proxySrv   *http.Server
	originLn   net.Listener
	proxyLn    net.Listener
}

// New analyzes the app, starts its origin and the proxy, and returns the
// running lab.
func New(o Options) (*Lab, error) {
	if o.App == nil {
		return nil, fmt.Errorf("lab: no app")
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.ClientLink == (netem.Link{}) {
		o.ClientLink = netem.Mobile4G()
	}
	if o.OriginBandwidth == 0 {
		o.OriginBandwidth = 25_000_000
	}
	feats := static.AllFeatures()
	if o.Features != nil {
		feats = *o.Features
	}

	g, err := static.Analyze(o.App.APK.Program, o.App.Name, o.App.APK.Entries(), static.Options{Features: feats})
	if err != nil {
		return nil, fmt.Errorf("lab: analyze %s: %w", o.App.Name, err)
	}
	cfg := config.Default(g)
	if !o.SharedTier {
		cc := cfg.EffectiveCache()
		cc.DisableSharedTier = true
		cfg.Cache = &cc
	}
	if o.Configure != nil {
		o.Configure(cfg)
	}

	l := &Lab{App: o.App, Graph: g, Config: cfg, Scale: o.Scale}
	l.clientLink = scaleLink(o.ClientLink, o.Scale)

	// Origin: one listener serves all of the app's hosts (routed by Host).
	l.originLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("lab: origin listen: %w", err)
	}
	l.originSrv = &http.Server{Handler: o.App.Handler(o.Scale)}
	go l.originSrv.Serve(l.originLn)

	// Upstream: per-host shaped links from Table 2 (or the sweep override).
	resolve := map[string]string{}
	links := map[string]netem.Link{}
	for _, host := range o.App.Hosts {
		rtt := o.App.HostRTT[host]
		if o.ProxyOriginRTT > 0 {
			rtt = o.ProxyOriginRTT
		}
		resolve[host] = l.originLn.Addr().String()
		links[host] = scaleLink(netem.Link{RTT: rtt, Bandwidth: o.OriginBandwidth}, o.Scale)
	}
	up := proxy.NewNetUpstream(resolve, links)

	l.Proxy = proxy.New(proxy.Options{
		Graph:           g,
		Config:          cfg,
		Upstream:        up,
		Workers:         o.Workers,
		DisablePrefetch: !o.Prefetch,
		DisableChaining: o.DisableChaining,
		RefreshExpired:  o.RefreshExpired,
		PrefetchPolicy:  o.PrefetchPolicy,
		PolicyDecay:     o.PolicyDecay,
		PolicyMaxUsers:  o.PolicyMaxUsers,
	})

	l.proxyLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("lab: proxy listen: %w", err)
	}
	l.proxyAddr = l.proxyLn.Addr().String()
	l.proxySrv = &http.Server{Handler: l.Proxy}
	go l.proxySrv.Serve(l.proxyLn)
	return l, nil
}

// scaleLink compresses a link's time behaviour by s: delays shrink, the
// bandwidth grows so transfer times shrink proportionally.
func scaleLink(link netem.Link, s float64) netem.Link {
	out := netem.Link{RTT: time.Duration(float64(link.RTT) * s)}
	if link.Bandwidth > 0 {
		out.Bandwidth = int64(float64(link.Bandwidth) / s)
	}
	return out
}

// ProxyAddr returns the proxy's listen address.
func (l *Lab) ProxyAddr() string { return l.proxyAddr }

// NewDevice provisions an emulated handset for the given user, with the
// app's render-delay model and per-user device properties.
func (l *Lab) NewDevice(user string) (*device.Device, error) {
	return device.New(device.Config{
		APK:         l.App.APK,
		RenderDelay: l.App.RenderDelay,
		Scale:       l.Scale,
		ProxyAddr:   l.proxyAddr,
		ClientLink:  l.clientLink,
		User:        user,
		Props: interp.DeviceProps{
			UserAgent:  "AppxEmu/1.0 (user " + user + ")",
			Locale:     "en-US",
			AppVersion: l.App.APK.Manifest.Version,
		},
	})
}

// Unscale converts a measured duration back to paper-real time.
func (l *Lab) Unscale(d time.Duration) time.Duration {
	return time.Duration(float64(d) / l.Scale)
}

// Close shuts down the proxy and origin.
func (l *Lab) Close() {
	if l.proxySrv != nil {
		l.proxySrv.Close()
	}
	if l.originSrv != nil {
		l.originSrv.Close()
	}
	if l.Proxy != nil {
		l.Proxy.Close()
	}
}
