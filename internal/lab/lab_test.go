package lab

import (
	"net/http"
	"testing"
	"time"

	"appx/internal/apps"
	"appx/internal/config"
	"appx/internal/netem"
	"appx/internal/static"
)

func TestNewLabLifecycle(t *testing.T) {
	l, err := New(Options{App: apps.Postmates(), Scale: 0.02, Prefetch: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer l.Close()
	if l.Graph == nil || len(l.Graph.Sigs) == 0 {
		t.Fatal("no analysis output")
	}
	if l.Config == nil {
		t.Fatal("no config")
	}
	if l.ProxyAddr() == "" {
		t.Fatal("no proxy address")
	}
	// The proxy must answer HTTP on its listener.
	resp, err := http.Get("http://" + l.ProxyAddr() + "/")
	if err != nil {
		t.Fatalf("proxy not reachable: %v", err)
	}
	resp.Body.Close()
}

func TestNewLabValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
}

func TestScaleLink(t *testing.T) {
	l := scaleLink(netem.Link{RTT: 100 * time.Millisecond, Bandwidth: 1000}, 0.5)
	if l.RTT != 50*time.Millisecond {
		t.Fatalf("RTT = %v", l.RTT)
	}
	if l.Bandwidth != 2000 {
		t.Fatalf("bandwidth = %d (must grow as time shrinks)", l.Bandwidth)
	}
	if zero := scaleLink(netem.Link{}, 0.5); zero.Bandwidth != 0 {
		t.Fatal("unlimited bandwidth must stay unlimited")
	}
}

func TestUnscale(t *testing.T) {
	l := &Lab{Scale: 0.25}
	if got := l.Unscale(time.Second); got != 4*time.Second {
		t.Fatalf("Unscale = %v", got)
	}
}

func TestConfigureHookApplied(t *testing.T) {
	l, err := New(Options{
		App: apps.Postmates(), Scale: 0.02, Prefetch: true,
		Configure: func(c *config.Config) { c.GlobalProbability = 0.25 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Config.GlobalProbability != 0.25 {
		t.Fatal("Configure hook not applied")
	}
}

func TestFeaturesOverride(t *testing.T) {
	baseline := static.BaselineFeatures()
	l, err := New(Options{App: apps.Wish(), Scale: 0.02, Features: &baseline})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	full, err := New(Options{App: apps.Wish(), Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if len(l.Graph.Deps) >= len(full.Graph.Deps) {
		t.Fatalf("baseline deps %d >= full deps %d", len(l.Graph.Deps), len(full.Graph.Deps))
	}
}

func TestDeviceEndToEnd(t *testing.T) {
	l, err := New(Options{App: apps.Postmates(), Scale: 0.02, Prefetch: false})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	d, err := l.NewDevice("labuser")
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	m, err := d.Launch()
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if m.Transactions == 0 || m.Bytes == 0 {
		t.Fatalf("launch measured nothing: %+v", m)
	}
}

func TestRTTOverrideChangesLatency(t *testing.T) {
	run := func(rtt time.Duration) time.Duration {
		l, err := New(Options{App: apps.Postmates(), Scale: 0.1, Prefetch: false, ProxyOriginRTT: rtt})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		d, err := l.NewDevice("u")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Launch(); err != nil {
			t.Fatal(err)
		}
		m, err := d.TapMain(0)
		if err != nil {
			t.Fatal(err)
		}
		return m.Network
	}
	if fast, slow := run(10*time.Millisecond), run(300*time.Millisecond); slow <= fast {
		t.Fatalf("RTT override ineffective: fast=%v slow=%v", fast, slow)
	}
}
