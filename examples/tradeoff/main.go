// Tradeoff: the latency/bandwidth knob of §6.3 (Figure 17 of the paper), on
// live emulation.
//
// The proxy operator sets a global prefetch probability; as it rises, median
// main-interaction latency falls while proxy↔origin data usage climbs. The
// example sweeps the knob on the Wish workload and prints the curve.
//
// Run with: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"time"

	"appx/internal/apps"
	"appx/internal/config"
	"appx/internal/lab"
	"appx/internal/metrics"
	"appx/internal/trace"
)

func main() {
	app := apps.Wish()
	fmt.Println("probability  median-latency  data-usage")
	for _, prob := range []float64{0, 0.5, 1.0} {
		prob := prob
		l, err := lab.New(lab.Options{
			App:      app,
			Scale:    0.1,
			Prefetch: prob > 0,
			Configure: func(c *config.Config) {
				c.GlobalProbability = prob
			},
		})
		if err != nil {
			log.Fatal(err)
		}

		// A small user-study replay per probability point.
		var mains []time.Duration
		for _, tr := range trace.GenerateStudy(app.APK, 3, 7, time.Minute) {
			d, err := l.NewDevice(tr.User)
			if err != nil {
				log.Fatal(err)
			}
			for _, m := range trace.Replay(d, tr, 80) {
				if m.Err != nil {
					log.Fatal(m.Err)
				}
				if m.Event.Main {
					mains = append(mains, l.Unscale(m.Measure.Total))
				}
			}
		}
		l.Proxy.Drain()
		usage := l.Proxy.Stats().Snapshot().NormalizedDataUsage()
		fmt.Printf("%10.0f%%  %14v  %9.2fx\n", prob*100, metrics.NewDigest(mains).Median().Round(time.Millisecond), usage)
		l.Close()
	}
}
