// Shopping: service-provider policy control on the Wish scenario (§4.4,
// Figure 9 of the paper).
//
// The example shows the three configuration mechanisms working against live
// emulated traffic:
//
//   - a prefetch-indicator header added to every proxy-issued request, so
//     the origin can separate synthetic from organic traffic (the paper's
//     view-count example; Firefox's X-moz:prefetch);
//   - a field-specific condition: item details are prefetched only when the
//     predecessor's price field exceeds a threshold;
//   - a per-signature kill switch on the large product images, trading
//     latency for bandwidth.
//
// Run with: go run ./examples/shopping
package main

import (
	"fmt"
	"log"
	"strings"

	"appx/internal/apps"
	"appx/internal/config"
	"appx/internal/lab"
	"appx/internal/sig"
	"appx/internal/static"
)

func main() {
	app := apps.Wish()
	g, err := static.Analyze(app.APK.Program, app.Name, app.APK.Entries(),
		static.Options{Features: static.AllFeatures()})
	if err != nil {
		log.Fatal(err)
	}

	// Locate policy targets: the detail signature by URI, the product image
	// (whose URI is fully response-derived) by its dependency path.
	detail := findSig(g, "/product/get")
	image := findSigByDepPath(g, "data.product.image")

	l, err := lab.New(lab.Options{
		App:      app,
		Scale:    0.1,
		Prefetch: true,
		Configure: func(c *config.Config) {
			for _, pol := range c.Policies {
				pol.AddHeader = []config.Header{{Key: "X-Appx-Prefetch", Value: "1"}}
			}
			if detail != nil {
				c.SetPolicy(&config.Policy{
					Hash: detail.Hash(), URI: detail.URI.String(),
					Prefetch: true, Probability: 1,
					AddHeader: []config.Header{{Key: "X-Appx-Prefetch", Value: "1"}},
					// Only prefetch details of items costing > $10.00.
					Condition: &config.Condition{Field: "data.products[*].product_info.can_ship", Op: "eq", Value: "true"},
				})
			}
			if image != nil {
				// The 315 KB product images dominate bandwidth: disable them.
				c.SetPolicy(&config.Policy{Hash: image.Hash(), URI: image.URI.String(), Prefetch: false})
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()

	d, err := l.NewDevice("shopper")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := d.Launch(); err != nil {
		log.Fatal(err)
	}
	if _, err := d.TapMain(0); err != nil {
		log.Fatal(err)
	}
	d.Back()
	l.Proxy.Drain()
	m, err := d.TapMain(2)
	if err != nil {
		log.Fatal(err)
	}

	snap := l.Proxy.Stats().Snapshot()
	fmt.Printf("second item detail: %v (network %v)\n", l.Unscale(m.Total), l.Unscale(m.Network))
	fmt.Printf("prefetches issued: %d, cache hits: %d, data usage: %.2fx\n",
		snap.Prefetches, snap.Hits, snap.NormalizedDataUsage())
	for id, st := range snap.PerSig {
		if st.Prefetches > 0 || st.Hits > 0 {
			fmt.Printf("  %-42s prefetched %3d, served %3d\n", id, st.Prefetches, st.Hits)
		}
	}
	if image != nil {
		if st := snap.PerSig[image.ID]; st.Prefetches == 0 {
			fmt.Println("product images were NOT prefetched (policy kill switch) — bandwidth saved")
		}
	}
}

func findSig(g *sig.Graph, uriSubstr string) *sig.Signature {
	for _, s := range g.Sigs {
		if strings.Contains(s.URI.String(), uriSubstr) {
			return s
		}
	}
	return nil
}

func findSigByDepPath(g *sig.Graph, respPath string) *sig.Signature {
	for _, d := range g.Deps {
		if d.RespPath == respPath {
			return g.Sig(d.SuccID)
		}
	}
	return nil
}
