// Fooddelivery: chained prefetching on the DoorDash scenario (Figures 3(c)
// and 11 of the paper).
//
// The store list's response seeds a successive dependency chain — store info
// → schedule, menu → menu items → suggestions — and the proxy walks it
// recursively: each prefetched response re-enters dynamic learning as a
// predecessor, so by the time the user taps a store, several levels of the
// tree are already cached.
//
// Run with: go run ./examples/fooddelivery
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"appx/internal/apps"
	"appx/internal/device"
	"appx/internal/lab"
)

func main() {
	app := apps.DoorDash()
	l, err := lab.New(lab.Options{App: app, Scale: 0.2, Prefetch: true})
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()

	fmt.Println("dependency chain found by static analysis:")
	for i, id := range l.Graph.Chain() {
		s := l.Graph.Sig(id)
		fmt.Printf("  %d. %s %s\n", i+1, s.Method, s.URI.String())
	}

	d, err := l.NewDevice("hungry")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := d.Launch(); err != nil {
		log.Fatal(err)
	}

	// Teach the proxy the run-time values by walking the chain once.
	if _, err := d.TapMain(0); err != nil {
		log.Fatal(err)
	}
	if _, err := d.Tap("menu-item", 0); err != nil {
		log.Fatal(err)
	}
	d.Back()
	d.Back()
	l.Proxy.Drain()

	// Now every other store's subtree is prefetched; opening one is fast.
	first := openStore(l, d, 1)
	d.Back()
	second := openStore(l, d, 2)
	d.Back()
	fmt.Printf("\nstore opens after chain warm-up: %v then %v\n", first, second)

	snap := l.Proxy.Stats().Snapshot()
	ids := make([]string, 0, len(snap.PerSig))
	for id := range snap.PerSig {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Println("\nper-signature prefetching (note depth >= 2 chain levels):")
	for _, id := range ids {
		st := snap.PerSig[id]
		if st.Prefetches > 0 {
			fmt.Printf("  %-38s prefetched %3d, served %3d\n", id, st.Prefetches, st.Hits)
		}
	}
}

func openStore(l *lab.Lab, d *device.Device, idx int) time.Duration {
	m, err := d.TapMain(idx)
	if err != nil {
		log.Fatal(err)
	}
	return l.Unscale(m.Total)
}
