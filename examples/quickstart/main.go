// Quickstart: the complete APPx pipeline on one app, end to end, in one
// process.
//
//  1. Phase 1 — static analysis of the Wish app package extracts message
//     signatures and inter-transaction dependencies.
//  2. Phase 2 — UI-fuzz-driven verification filters the prefetchable set and
//     estimates expiration times.
//  3. Deployment — a lab wires origins, WAN emulation, the acceleration
//     proxy, and an emulated handset together.
//  4. Measurement — the same main interaction is timed with and without
//     prefetching.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"appx/internal/apps"
	"appx/internal/core"
	"appx/internal/lab"
)

func main() {
	app := apps.Wish()

	// Phases 1-3: analyze, verify, configure.
	art, err := core.Generate(core.Options{
		App: app.Name,
		APK: app.APK,
		Verify: &core.VerifyOptions{
			Origin:       app.Handler(0),
			FuzzSeed:     1,
			FuzzEvents:   200,
			ProbeMin:     time.Millisecond,
			ProbeMax:     4 * time.Millisecond,
			InstantProbe: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: %d signatures, %d prefetchable, %d dependencies (max chain %d)\n",
		len(art.Graph.Sigs), len(art.Graph.Prefetchable()), len(art.Graph.Deps), art.Graph.MaxChainLen())
	fmt.Printf("phase 2: %d verified, %d disabled\n",
		len(art.Verification.Verified), len(art.Verification.Disabled))

	// Measure the main interaction (open an item detail) with and without
	// the acceleration proxy's prefetching, at 1/5 of paper-real time.
	for _, prefetch := range []bool{false, true} {
		l, err := lab.New(lab.Options{App: app, Scale: 0.2, Prefetch: prefetch})
		if err != nil {
			log.Fatal(err)
		}
		d, err := l.NewDevice("quickstart")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := d.Launch(); err != nil {
			log.Fatal(err)
		}
		if _, err := d.TapMain(0); err != nil { // warm-up: teaches run-time values
			log.Fatal(err)
		}
		d.Back()
		l.Proxy.Drain()
		m, err := d.TapMain(3)
		if err != nil {
			log.Fatal(err)
		}
		mode := "Orig"
		if prefetch {
			mode = "APPx"
		}
		fmt.Printf("%s: item detail in %v (network %v, processing %v)\n",
			mode, l.Unscale(m.Total), l.Unscale(m.Network), l.Unscale(m.Processing))
		l.Close()
	}
}
