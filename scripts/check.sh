#!/bin/sh
# check.sh runs the repository's full verification gate: vet plus the test
# suite under the race detector. CI and pre-commit hooks call this; so does
# `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"
