#!/bin/sh
# check.sh runs the repository's full verification gate: vet plus the test
# suite under the race detector. CI and pre-commit hooks call this; so does
# `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# The overload path (scheduler classes, admission, panic recovery) is the
# most concurrency-heavy code in the tree; run it race-enabled a second time
# with -count=1 so a cached first pass can never mask a fresh interleaving.
echo "== go test -race -count=1 ./internal/proxy/..."
go test -race -count=1 ./internal/proxy/...

echo "== cache bench smoke"
go test ./internal/cache/ -run '^$' -bench . -benchtime 1x

echo "== sched bench smoke"
go test ./internal/proxy/sched/ -run '^$' -bench . -benchtime 1x

echo "== match bench smoke"
go test ./internal/sig/ -run '^$' -bench BenchmarkMatchRequest -benchtime 1x

# The observability hot path sits inside every request; the alloc tests
# (TestSpanRecordAllocs, TestHistogramObserveAllocs) fail if span record or
# histogram observe ever exceeds 2 allocs/op, and the registry's
# scrape-while-observing test runs race-enabled above.
echo "== obs bench smoke + alloc gate"
go test ./internal/obs/ -run 'Allocs' -bench 'BenchmarkSpanRecord|BenchmarkHistogramObserve' -benchtime 1x
go test -race -count=1 ./internal/obs/ -run TestRegistryConcurrentObserveAndScrape

# Persistence smoke gate: the corrupt-restore ladder (every corruption mode
# must degrade to a counted cold start, never a panic) runs race-enabled with
# -count=1, and the disk-tier codec/spill/load benches must still compile and
# complete.
echo "== persist smoke gate"
go test -race -count=1 ./internal/persist/ \
    -run 'TestSnapshotLadder|TestSnapshotTruncatedFile|TestSnapshotFaultInjection|TestSnapshotAtomicity|TestTierFaultsDegradeToMiss|TestTierCorruptFileIsMissAndDeleted'
go test -race -count=1 ./internal/proxy/ \
    -run 'TestCorruptSnapshotColdStart|TestFingerprintMismatchColdStart|TestKillRestartRecoversHitRatio'
go test ./internal/persist/ -run '^$' -bench . -benchtime 1x

# Cluster smoke gate: ring properties (skew, minimal movement), membership
# probe transitions, and the multi-instance proxy tests — boot real fleets on
# loopback, relay with the one-hop cap, kill an instance mid-load and require
# zero foreground failures, fill a miss from a sibling's shared tier. The
# clustersweep acceptance test additionally pins ≥30% origin offload at three
# instances and a zero-failure kill/rejoin churn phase.
echo "== cluster smoke gate"
go test -race -count=1 ./internal/cluster/
go test -race -count=1 ./internal/proxy/ \
    -run 'TestClusterForwardLoopPrevented|TestClusterKillNoForegroundFailures|TestClusterPeerFill'
go test -race -count=1 ./internal/exp/ -run TestClusterSweepAcceptance

# Chaos smoke gate: seeded fault schedules against a real 3-instance loopback
# cluster with the invariant oracle watching — partition (forward fallbacks
# must fire, zero foreground failures) and disk faults (every injected
# torn/corrupt/failed write must decode or surface as a typed corruption).
# The budget and hedge unit tests plus the breaker's half-open probe race run
# race-enabled alongside.
echo "== chaos smoke gate"
go test -race -count=1 ./internal/chaos/
go test -race -count=1 ./internal/proxy/ \
    -run 'TestBudget|TestHedge'
go test -race -count=1 ./internal/proxy/resilience/ \
    -run TestBreakerHalfOpenProbeRace

# Stream data-plane gate: Range/206 conformance, flight attach under -race,
# TTFB decoupled from body completion, abort paths returning every pooled
# chunk — then the whole-path alloc budget (O(1) allocs/request: the test
# fails if allocations grow with the number of body chunks) and the spool
# throughput bench smoke.
echo "== stream data-plane gate"
go test -race -count=1 ./internal/stream/
go test -race -count=1 ./internal/proxy/ \
    -run 'TestRangeConformanceCached|TestAttachToInFlightFetch|TestTTFBPrecedesSlowBody|TestOverCapBodyStreamsUncached|TestPrefetchOverflowAbortsAndReleases'
go test -count=1 ./internal/proxy/ -run TestWholePathAllocBudget
go test ./internal/stream/ -run '^$' -bench BenchmarkSpoolAppendRead -benchtime 1x

# Policy gate: the static policy must stay differentially identical to the
# pre-policy inline chain logic (randomized batches + real proxy fan-out
# order), the markov model's locking runs race-enabled, and the policysweep
# acceptance test pins markov ahead of static on the hostile workloads
# without inflating wasted origin bytes on the legacy replay.
echo "== policy gate"
go test -race -count=1 ./internal/policy/ ./internal/trace/
go test -race -count=1 ./internal/proxy/ \
    -run 'TestStaticChainOrderDifferential|TestNoExemplarSkipCounted|TestMarkovPersistRoundTrip'
go test -count=1 ./internal/exp/ -run TestPolicySweepAcceptance

echo "check: OK"
