#!/bin/sh
# check.sh runs the repository's full verification gate: vet plus the test
# suite under the race detector. CI and pre-commit hooks call this; so does
# `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== cache bench smoke"
go test ./internal/cache/ -run '^$' -bench . -benchtime 1x

echo "check: OK"
